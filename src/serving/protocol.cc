#include "serving/protocol.h"

#include <cmath>
#include <cstring>

#include "common/coding.h"

namespace vitri::serving {

namespace {

/// Cursor over a payload with bounds-checked reads: every getter fails
/// (returns false) instead of reading past the end, so decoders built on
/// it are total functions of their input bytes.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return remaining() == 0; }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = bytes_[pos_];
    pos_ += 1;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = DecodeU32(bytes_.data() + pos_);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = DecodeU64(bytes_.data() + pos_);
    pos_ += 8;
    return true;
  }
  bool ReadDouble(double* v) {
    if (remaining() < 8) return false;
    *v = DecodeDouble(bytes_.data() + pos_);
    pos_ += 8;
    return true;
  }
  /// The rest of the payload as a string (always succeeds).
  std::string ReadRest() {
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                  remaining());
    pos_ = bytes_.size();
    return s;
  }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

void AppendU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }
void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  uint8_t buf[4];
  EncodeU32(buf, v);
  out->insert(out->end(), buf, buf + 4);
}
void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  uint8_t buf[8];
  EncodeU64(buf, v);
  out->insert(out->end(), buf, buf + 8);
}
void AppendDouble(std::vector<uint8_t>* out, double v) {
  uint8_t buf[8];
  EncodeDouble(buf, v);
  out->insert(out->end(), buf, buf + 8);
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed payload: ") + what);
}

/// Shared tail of the knn/insert encoders: one ViTri as
/// [video_id:u32][cluster_size:u32][radius:f64][position:f64 x dim].
void AppendViTri(std::vector<uint8_t>* out, const core::ViTri& v) {
  AppendU32(out, v.video_id);
  AppendU32(out, v.cluster_size);
  AppendDouble(out, v.radius);
  for (double x : v.position) AppendDouble(out, x);
}

/// Decodes one ViTri of known dimension. The caller has already proven
/// dimension <= kMaxDimension, and the per-field reads bound everything
/// else, so a hostile count can at worst exhaust the payload (and fail),
/// never allocate beyond it.
bool ReadViTri(ByteReader* r, uint32_t dimension, core::ViTri* v) {
  if (!r->ReadU32(&v->video_id)) return false;
  if (!r->ReadU32(&v->cluster_size)) return false;
  if (!r->ReadDouble(&v->radius)) return false;
  if (!std::isfinite(v->radius) || v->radius < 0.0) return false;
  v->position.resize(dimension);
  for (uint32_t d = 0; d < dimension; ++d) {
    if (!r->ReadDouble(&v->position[d])) return false;
    if (!std::isfinite(v->position[d])) return false;
  }
  return true;
}

/// Wire size of one encoded ViTri at `dimension`.
size_t ViTriWireSize(uint32_t dimension) {
  return 4 + 4 + 8 + 8 * static_cast<size_t>(dimension);
}

}  // namespace

bool IsValidMessageType(uint8_t raw) {
  switch (static_cast<MessageType>(raw)) {
    case MessageType::kPingRequest:
    case MessageType::kKnnRequest:
    case MessageType::kInsertRequest:
    case MessageType::kStatsRequest:
    case MessageType::kShutdownRequest:
    case MessageType::kPingResponse:
    case MessageType::kKnnResponse:
    case MessageType::kInsertResponse:
    case MessageType::kStatsResponse:
    case MessageType::kShutdownResponse:
      return true;
  }
  return false;
}

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kPingRequest:
      return "PingRequest";
    case MessageType::kKnnRequest:
      return "KnnRequest";
    case MessageType::kInsertRequest:
      return "InsertRequest";
    case MessageType::kStatsRequest:
      return "StatsRequest";
    case MessageType::kShutdownRequest:
      return "ShutdownRequest";
    case MessageType::kPingResponse:
      return "PingResponse";
    case MessageType::kKnnResponse:
      return "KnnResponse";
    case MessageType::kInsertResponse:
      return "InsertResponse";
    case MessageType::kStatsResponse:
      return "StatsResponse";
    case MessageType::kShutdownResponse:
      return "ShutdownResponse";
  }
  return "unknown";
}

MessageType ResponseTypeFor(MessageType request) {
  return static_cast<MessageType>(static_cast<uint8_t>(request) | 0x80u);
}

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "Ok";
    case WireStatus::kInvalidRequest:
      return "InvalidRequest";
    case WireStatus::kOverloaded:
      return "Overloaded";
    case WireStatus::kDeadlineExceeded:
      return "DeadlineExceeded";
    case WireStatus::kShuttingDown:
      return "ShuttingDown";
    case WireStatus::kInternalError:
      return "InternalError";
  }
  return "unknown";
}

bool IsValidWireStatus(uint8_t raw) {
  return raw <= static_cast<uint8_t>(WireStatus::kInternalError);
}

const char* FrameDecodeStatusName(FrameDecodeStatus status) {
  switch (status) {
    case FrameDecodeStatus::kOk:
      return "Ok";
    case FrameDecodeStatus::kNeedMoreData:
      return "NeedMoreData";
    case FrameDecodeStatus::kBadMagic:
      return "BadMagic";
    case FrameDecodeStatus::kBadFlags:
      return "BadFlags";
    case FrameDecodeStatus::kBadType:
      return "BadType";
    case FrameDecodeStatus::kTooLarge:
      return "TooLarge";
  }
  return "unknown";
}

void EncodeFrame(MessageType type, std::span<const uint8_t> payload,
                 std::vector<uint8_t>* out) {
  out->reserve(out->size() + kFrameHeaderSize + payload.size());
  AppendU32(out, kFrameMagic);
  AppendU8(out, static_cast<uint8_t>(type));
  AppendU8(out, 0);  // flags
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  out->insert(out->end(), payload.begin(), payload.end());
}

FrameDecodeStatus DecodeFrame(std::span<const uint8_t> in, Frame* frame,
                              size_t* consumed) {
  // Reject on whatever prefix of the header is present: bad magic is
  // detectable from byte 0, so garbage fails fast instead of stalling a
  // connection in kNeedMoreData.
  if (in.empty()) return FrameDecodeStatus::kNeedMoreData;
  const size_t magic_avail = in.size() < 4 ? in.size() : 4;
  uint8_t expect[4];
  EncodeU32(expect, kFrameMagic);
  if (std::memcmp(in.data(), expect, magic_avail) != 0) {
    return FrameDecodeStatus::kBadMagic;
  }
  if (in.size() >= 5 && !IsValidMessageType(in[4])) {
    return FrameDecodeStatus::kBadType;
  }
  if (in.size() >= 6 && in[5] != 0) {
    return FrameDecodeStatus::kBadFlags;
  }
  if (in.size() < kFrameHeaderSize) {
    return FrameDecodeStatus::kNeedMoreData;
  }
  const uint32_t len = DecodeU32(in.data() + 6);
  if (len > kMaxFramePayload) {
    return FrameDecodeStatus::kTooLarge;
  }
  if (in.size() < kFrameHeaderSize + len) {
    return FrameDecodeStatus::kNeedMoreData;
  }
  frame->type = static_cast<MessageType>(in[4]);
  frame->payload.assign(in.begin() + kFrameHeaderSize,
                        in.begin() + kFrameHeaderSize + len);
  *consumed = kFrameHeaderSize + len;
  return FrameDecodeStatus::kOk;
}

// --- requests --------------------------------------------------------------

void EncodePingRequest(const PingRequest& req, std::vector<uint8_t>* out) {
  AppendU64(out, req.request_id);
}

void EncodeKnnRequest(const KnnRequest& req, std::vector<uint8_t>* out) {
  AppendU64(out, req.request_id);
  AppendU32(out, req.deadline_ms);
  AppendU32(out, req.k);
  AppendU8(out, req.method == core::KnnMethod::kNaive ? 0 : 1);
  AppendU32(out, req.dimension);
  AppendU32(out, static_cast<uint32_t>(req.queries.size()));
  for (const core::BatchQuery& q : req.queries) {
    AppendU32(out, q.num_frames);
    AppendU32(out, static_cast<uint32_t>(q.vitris.size()));
    for (const core::ViTri& v : q.vitris) AppendViTri(out, v);
  }
}

void EncodeInsertRequest(const InsertRequest& req,
                         std::vector<uint8_t>* out) {
  AppendU64(out, req.request_id);
  AppendU32(out, req.deadline_ms);
  AppendU32(out, req.video_id);
  AppendU32(out, req.num_frames);
  AppendU32(out, req.dimension);
  AppendU32(out, static_cast<uint32_t>(req.vitris.size()));
  for (const core::ViTri& v : req.vitris) AppendViTri(out, v);
}

void EncodeStatsRequest(const StatsRequest& req, std::vector<uint8_t>* out) {
  AppendU64(out, req.request_id);
}

void EncodeShutdownRequest(const ShutdownRequest& req,
                           std::vector<uint8_t>* out) {
  AppendU64(out, req.request_id);
}

Result<PingRequest> DecodePingRequest(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  PingRequest req;
  if (!r.ReadU64(&req.request_id)) return Malformed("ping id");
  if (!r.done()) return Malformed("ping trailing bytes");
  return req;
}

Result<KnnRequest> DecodeKnnRequest(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  KnnRequest req;
  uint8_t method = 0;
  uint32_t num_queries = 0;
  if (!r.ReadU64(&req.request_id) || !r.ReadU32(&req.deadline_ms) ||
      !r.ReadU32(&req.k) || !r.ReadU8(&method) ||
      !r.ReadU32(&req.dimension) || !r.ReadU32(&num_queries)) {
    return Malformed("knn header");
  }
  if (method > 1) return Malformed("knn method");
  req.method =
      method == 0 ? core::KnnMethod::kNaive : core::KnnMethod::kComposed;
  if (req.k == 0) return Malformed("knn k = 0");
  if (req.dimension == 0 || req.dimension > kMaxDimension) {
    return Malformed("knn dimension");
  }
  // Each query carries at least its 8-byte header, so num_queries is
  // bounded by the remaining bytes before any reserve.
  if (num_queries > r.remaining() / 8) return Malformed("knn query count");
  req.queries.reserve(num_queries);
  const size_t vitri_size = ViTriWireSize(req.dimension);
  for (uint32_t q = 0; q < num_queries; ++q) {
    core::BatchQuery query;
    uint32_t num_vitris = 0;
    if (!r.ReadU32(&query.num_frames) || !r.ReadU32(&num_vitris)) {
      return Malformed("knn query header");
    }
    if (num_vitris == 0) return Malformed("knn empty query");
    if (num_vitris > r.remaining() / vitri_size) {
      return Malformed("knn vitri count");
    }
    query.vitris.resize(num_vitris);
    for (uint32_t i = 0; i < num_vitris; ++i) {
      if (!ReadViTri(&r, req.dimension, &query.vitris[i])) {
        return Malformed("knn vitri");
      }
    }
    req.queries.push_back(std::move(query));
  }
  if (req.queries.empty()) return Malformed("knn no queries");
  if (!r.done()) return Malformed("knn trailing bytes");
  return req;
}

Result<InsertRequest> DecodeInsertRequest(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  InsertRequest req;
  uint32_t num_vitris = 0;
  if (!r.ReadU64(&req.request_id) || !r.ReadU32(&req.deadline_ms) ||
      !r.ReadU32(&req.video_id) || !r.ReadU32(&req.num_frames) ||
      !r.ReadU32(&req.dimension) || !r.ReadU32(&num_vitris)) {
    return Malformed("insert header");
  }
  if (req.dimension == 0 || req.dimension > kMaxDimension) {
    return Malformed("insert dimension");
  }
  if (num_vitris == 0) return Malformed("insert no vitris");
  const size_t vitri_size = ViTriWireSize(req.dimension);
  if (num_vitris > r.remaining() / vitri_size) {
    return Malformed("insert vitri count");
  }
  req.vitris.resize(num_vitris);
  for (uint32_t i = 0; i < num_vitris; ++i) {
    if (!ReadViTri(&r, req.dimension, &req.vitris[i])) {
      return Malformed("insert vitri");
    }
  }
  if (!r.done()) return Malformed("insert trailing bytes");
  return req;
}

Result<StatsRequest> DecodeStatsRequest(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  StatsRequest req;
  if (!r.ReadU64(&req.request_id)) return Malformed("stats id");
  if (!r.done()) return Malformed("stats trailing bytes");
  return req;
}

Result<ShutdownRequest> DecodeShutdownRequest(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  ShutdownRequest req;
  if (!r.ReadU64(&req.request_id)) return Malformed("shutdown id");
  if (!r.done()) return Malformed("shutdown trailing bytes");
  return req;
}

// --- responses -------------------------------------------------------------

namespace {

void AppendResponseHead(std::vector<uint8_t>* out, const ResponseHead& head) {
  AppendU64(out, head.request_id);
  AppendU8(out, static_cast<uint8_t>(head.status));
}

bool ReadResponseHead(ByteReader* r, ResponseHead* head) {
  uint8_t status = 0;
  if (!r->ReadU64(&head->request_id) || !r->ReadU8(&status)) return false;
  if (!IsValidWireStatus(status)) return false;
  head->status = static_cast<WireStatus>(status);
  return true;
}

}  // namespace

void EncodeSimpleResponse(const ResponseHead& head, std::string_view body,
                          std::vector<uint8_t>* out) {
  AppendResponseHead(out, head);
  out->insert(out->end(), body.begin(), body.end());
}

void EncodeKnnResponse(const KnnResponse& resp, std::vector<uint8_t>* out) {
  AppendResponseHead(out, resp.head);
  if (resp.head.status != WireStatus::kOk) {
    out->insert(out->end(), resp.error.begin(), resp.error.end());
    return;
  }
  AppendU32(out, static_cast<uint32_t>(resp.results.size()));
  for (const std::vector<core::VideoMatch>& matches : resp.results) {
    AppendU32(out, static_cast<uint32_t>(matches.size()));
    for (const core::VideoMatch& m : matches) {
      AppendU32(out, m.video_id);
      AppendDouble(out, m.similarity);
    }
  }
}

void EncodeStatsResponse(const StatsResponse& resp,
                         std::vector<uint8_t>* out) {
  AppendResponseHead(out, resp.head);
  const std::string& body =
      resp.head.status == WireStatus::kOk ? resp.json : resp.error;
  out->insert(out->end(), body.begin(), body.end());
}

Result<SimpleResponse> DecodeSimpleResponse(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  SimpleResponse resp;
  if (!ReadResponseHead(&r, &resp.head)) return Malformed("response head");
  resp.error = r.ReadRest();
  return resp;
}

Result<KnnResponse> DecodeKnnResponse(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  KnnResponse resp;
  if (!ReadResponseHead(&r, &resp.head)) return Malformed("response head");
  if (resp.head.status != WireStatus::kOk) {
    resp.error = r.ReadRest();
    return resp;
  }
  uint32_t num_results = 0;
  if (!r.ReadU32(&num_results)) return Malformed("knn result count");
  if (num_results > r.remaining() / 4) return Malformed("knn result count");
  resp.results.reserve(num_results);
  for (uint32_t i = 0; i < num_results; ++i) {
    uint32_t num_matches = 0;
    if (!r.ReadU32(&num_matches)) return Malformed("knn match count");
    if (num_matches > r.remaining() / 12) return Malformed("knn match count");
    std::vector<core::VideoMatch> matches(num_matches);
    for (uint32_t m = 0; m < num_matches; ++m) {
      if (!r.ReadU32(&matches[m].video_id) ||
          !r.ReadDouble(&matches[m].similarity)) {
        return Malformed("knn match");
      }
    }
    resp.results.push_back(std::move(matches));
  }
  if (!r.done()) return Malformed("knn response trailing bytes");
  return resp;
}

Result<StatsResponse> DecodeStatsResponse(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  StatsResponse resp;
  if (!ReadResponseHead(&r, &resp.head)) return Malformed("response head");
  if (resp.head.status == WireStatus::kOk) {
    resp.json = r.ReadRest();
  } else {
    resp.error = r.ReadRest();
  }
  return resp;
}

}  // namespace vitri::serving
