#include "serving/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/coding.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/os.h"
#include "core/sharded_index.h"

namespace vitri::serving {

namespace {

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

const char* StateName(uint8_t state) {
  switch (state) {
    case 0:
      return "idle";
    case 1:
      return "running";
    case 2:
      return "stopping";
    default:
      return "stopped";
  }
}

}  // namespace

Server::Server(core::ViTriIndex* index, ServerOptions options)
    : index_(index),
      options_(std::move(options)),
      queue_(options_.queue_capacity) {}

Server::Server(core::ShardedViTriIndex* sharded, ServerOptions options)
    : index_(nullptr),
      sharded_(sharded),
      options_(std::move(options)),
      queue_(options_.queue_capacity) {}

Server::~Server() {
  Status ignored = Shutdown();
  (void)ignored;
}

uint64_t Server::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status Server::Start() {
  {
    MutexLock lock(state_mu_);
    if (state_ != State::kIdle) {
      return Status::InvalidArgument("server already started");
    }
  }
  // A client vanishing mid-response must surface as EPIPE, not SIGPIPE.
  IgnoreSigpipe();
  Status st = StartListener();
  if (!st.ok()) {
    CloseFd(&listen_fd_);
    return st;
  }
  if (::pipe(wake_pipe_) != 0) {
    CloseFd(&listen_fd_);
    return Status::IoError("pipe: " + ErrnoString(errno));
  }
  const size_t num_workers =
      options_.num_workers == 0 ? 1 : options_.num_workers;
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  listener_ = std::thread([this] { ListenerLoop(); });
  {
    MutexLock lock(state_mu_);
    state_ = State::kRunning;
  }
  return Status::OK();
}

Status Server::StartListener() {
  const bool use_unix = !options_.unix_socket_path.empty();
  if (use_unix == (options_.tcp_port >= 0)) {
    return Status::InvalidArgument(
        "configure exactly one of unix_socket_path and tcp_port");
  }
  if (use_unix) {
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_socket_path);
    }
    std::memcpy(addr.sun_path, options_.unix_socket_path.c_str(),
                options_.unix_socket_path.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IoError("socket: " + ErrnoString(errno));
    }
    // A stale socket file from a crashed run would make bind fail.
    ::unlink(options_.unix_socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::IoError("bind " + options_.unix_socket_path + ": " +
                             ErrnoString(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IoError("socket: " + ErrnoString(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::IoError("bind 127.0.0.1:" +
                             std::to_string(options_.tcp_port) + ": " +
                             ErrnoString(errno));
    }
    sockaddr_in bound = {};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      return Status::IoError("getsockname: " + ErrnoString(errno));
    }
    bound_tcp_port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::IoError("listen: " + ErrnoString(errno));
  }
  return Status::OK();
}

void Server::ListenerLoop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // Shutdown() wake.
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;  // EINTR / transient accept failure.
    accepted_conns_.fetch_add(1, std::memory_order_relaxed);
    VITRI_METRIC_COUNTER("serving.connections")->Increment();
    auto session = std::make_unique<Session>();
    session->fd = fd;
    Session* raw = session.get();
    {
      MutexLock lock(sessions_mu_);
      sessions_.push_back(std::move(session));
    }
    raw->reader = std::thread([this, raw] { SessionLoop(raw); });
  }
}

void Server::SessionLoop(Session* session) {
  for (;;) {
    Frame frame;
    if (!ReadOneFrame(session, &frame)) break;
    HandleFrame(session, std::move(frame));
  }
  session->read_closed.store(true, std::memory_order_release);
}

bool Server::ReadOneFrame(Session* session, Frame* frame) {
  uint8_t header[kFrameHeaderSize];
  Result<size_t> got = ReadFull(session->fd, header, sizeof(header));
  if (!got.ok() || *got == 0) return false;  // Error or clean EOF.
  if (*got < sizeof(header)) return false;   // Peer vanished mid-header.
  size_t consumed = 0;
  FrameDecodeStatus st =
      DecodeFrame(std::span<const uint8_t>(header, sizeof(header)), frame,
                  &consumed);
  if (st == FrameDecodeStatus::kOk) return true;  // Empty payload.
  if (st != FrameDecodeStatus::kNeedMoreData) {
    // Bad magic / type / flags / oversized length: no request id exists
    // to answer, so the only safe recovery is dropping the connection
    // (the stream is desynchronized from here on anyway).
    invalid_requests_.fetch_add(1, std::memory_order_relaxed);
    VITRI_METRIC_COUNTER("serving.invalid_frames")->Increment();
    return false;
  }
  const uint32_t payload_len = DecodeU32(header + 6);
  std::vector<uint8_t> buf(kFrameHeaderSize + payload_len);
  std::memcpy(buf.data(), header, kFrameHeaderSize);
  got = ReadFull(session->fd, buf.data() + kFrameHeaderSize, payload_len);
  if (!got.ok() || *got < payload_len) return false;
  return DecodeFrame(buf, frame, &consumed) == FrameDecodeStatus::kOk;
}

void Server::HandleFrame(Session* session, Frame frame) {
  VITRI_METRIC_COUNTER("serving.requests")->Increment();
  switch (frame.type) {
    case MessageType::kPingRequest: {
      Result<PingRequest> req = DecodePingRequest(frame.payload);
      if (!req.ok()) {
        invalid_requests_.fetch_add(1, std::memory_order_relaxed);
        RespondSimple(session, MessageType::kPingResponse, 0,
                      WireStatus::kInvalidRequest, req.status().message());
        return;
      }
      RespondSimple(session, MessageType::kPingResponse, req->request_id,
                    WireStatus::kOk, "");
      return;
    }
    case MessageType::kStatsRequest: {
      Result<StatsRequest> req = DecodeStatsRequest(frame.payload);
      if (!req.ok()) {
        invalid_requests_.fetch_add(1, std::memory_order_relaxed);
        RespondSimple(session, MessageType::kStatsResponse, 0,
                      WireStatus::kInvalidRequest, req.status().message());
        return;
      }
      StatsResponse resp;
      resp.head.request_id = req->request_id;
      resp.head.status = WireStatus::kOk;
      resp.json = BuildStatsJson();
      std::vector<uint8_t> payload;
      EncodeStatsResponse(resp, &payload);
      responses_ok_.fetch_add(1, std::memory_order_relaxed);
      WriteResponse(session, MessageType::kStatsResponse, payload);
      return;
    }
    case MessageType::kShutdownRequest: {
      Result<ShutdownRequest> req = DecodeShutdownRequest(frame.payload);
      if (!req.ok()) {
        invalid_requests_.fetch_add(1, std::memory_order_relaxed);
        RespondSimple(session, MessageType::kShutdownResponse, 0,
                      WireStatus::kInvalidRequest, req.status().message());
        return;
      }
      // Ack first so the client sees the response before the stream
      // closes; the actual stop runs on the owner's thread
      // (WaitForShutdownRequest), never on this session thread.
      RespondSimple(session, MessageType::kShutdownResponse, req->request_id,
                    WireStatus::kOk, "");
      RequestShutdown();
      return;
    }
    case MessageType::kKnnRequest:
    case MessageType::kInsertRequest: {
      WorkItem item;
      item.session = session;
      item.type = frame.type;
      const uint64_t now = NowMicros();
      uint32_t deadline_ms = 0;
      if (frame.type == MessageType::kKnnRequest) {
        Result<KnnRequest> req = DecodeKnnRequest(frame.payload);
        if (!req.ok()) {
          invalid_requests_.fetch_add(1, std::memory_order_relaxed);
          RespondSimple(session, MessageType::kKnnResponse, 0,
                        WireStatus::kInvalidRequest, req.status().message());
          return;
        }
        item.request_id = req->request_id;
        deadline_ms = req->deadline_ms;
        item.knn = std::move(*req);
      } else {
        Result<InsertRequest> req = DecodeInsertRequest(frame.payload);
        if (!req.ok()) {
          invalid_requests_.fetch_add(1, std::memory_order_relaxed);
          RespondSimple(session, MessageType::kInsertResponse, 0,
                        WireStatus::kInvalidRequest, req.status().message());
          return;
        }
        item.request_id = req->request_id;
        deadline_ms = req->deadline_ms;
        item.insert = std::move(*req);
      }
      item.enqueue_us = now;
      item.deadline_us =
          deadline_ms == 0 ? 0 : now + uint64_t{deadline_ms} * 1000;
      const MessageType response_type = ResponseTypeFor(frame.type);
      const uint64_t request_id = item.request_id;
      if (!queue_.TryPush(std::move(item))) {
        // Typed rejection — the protocol's admission-control contract.
        if (queue_.closed()) {
          rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
          VITRI_METRIC_COUNTER("serving.rejected.shutting_down")->Increment();
          RespondSimple(session, response_type, request_id,
                        WireStatus::kShuttingDown, "server is shutting down");
        } else {
          rejected_overloaded_.fetch_add(1, std::memory_order_relaxed);
          VITRI_METRIC_COUNTER("serving.rejected.overloaded")->Increment();
          RespondSimple(session, response_type, request_id,
                        WireStatus::kOverloaded, "request queue is full");
        }
        return;
      }
      admitted_.fetch_add(1, std::memory_order_relaxed);
      VITRI_METRIC_COUNTER("serving.admitted")->Increment();
      VITRI_METRIC_GAUGE("serving.queue.depth")
          ->Set(static_cast<int64_t>(queue_.size()));
      Hook("session.enqueued");
      return;
    }
    default: {
      // A response frame sent to the server (valid type, wrong
      // direction).
      invalid_requests_.fetch_add(1, std::memory_order_relaxed);
      RespondSimple(session, ResponseTypeFor(frame.type), 0,
                    WireStatus::kInvalidRequest,
                    std::string("unexpected frame: ") +
                        MessageTypeName(frame.type));
      return;
    }
  }
}

void Server::WorkerLoop() {
  WorkItem item;
  while (queue_.Pop(&item)) {
    Hook("worker.dequeue");
    VITRI_METRIC_HISTOGRAM("serving.queue.wait_us")
        ->Record(NowMicros() - item.enqueue_us);
    VITRI_METRIC_GAUGE("serving.queue.depth")
        ->Set(static_cast<int64_t>(queue_.size()));
    if (item.deadline_us != 0 && NowMicros() > item.deadline_us) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      VITRI_METRIC_COUNTER("serving.deadline_exceeded")->Increment();
      RespondSimple(item.session, ResponseTypeFor(item.type), item.request_id,
                    WireStatus::kDeadlineExceeded,
                    "deadline expired before execution");
      continue;
    }
    Hook("worker.execute");
    const uint64_t start = NowMicros();
    if (item.type == MessageType::kKnnRequest) {
      HandleKnn(std::move(item));
    } else {
      HandleInsert(std::move(item));
    }
    VITRI_METRIC_HISTOGRAM("serving.request.latency_us")
        ->Record(NowMicros() - start);
  }
}

void Server::HandleKnn(WorkItem item) {
  KnnResponse resp;
  resp.head.request_id = item.request_id;
  const bool traced =
      options_.trace_every != 0 &&
      knn_seq_.fetch_add(1, std::memory_order_relaxed) %
              options_.trace_every ==
          0;
  std::vector<core::QueryTrace> traces;
  Status failure = Status::OK();
  bool expired = false;
  if (item.deadline_us == 0) {
    // Query tracing is a single-index feature; the sharded route
    // scatter-gathers across shards without per-stage traces.
    Result<std::vector<std::vector<core::VideoMatch>>> r =
        sharded_ != nullptr
            ? sharded_->BatchKnn(item.knn.queries, item.knn.k,
                                 item.knn.method, options_.knn_threads)
            : index_->BatchKnn(item.knn.queries, item.knn.k, item.knn.method,
                               options_.knn_threads, nullptr,
                               traced ? &traces : nullptr);
    if (r.ok()) {
      resp.results = std::move(*r);
    } else {
      failure = r.status();
    }
  } else {
    // Deadline-aware path: one query per stage, with the deadline
    // re-checked between stages so an expired request stops consuming
    // index time mid-batch.
    resp.results.reserve(item.knn.queries.size());
    for (const core::BatchQuery& q : item.knn.queries) {
      if (NowMicros() > item.deadline_us) {
        expired = true;
        break;
      }
      Result<std::vector<core::VideoMatch>> r =
          sharded_ != nullptr
              ? sharded_->Knn(q.vitris, q.num_frames, item.knn.k,
                              item.knn.method)
              : index_->Knn(q.vitris, q.num_frames, item.knn.k,
                            item.knn.method);
      if (!r.ok()) {
        failure = r.status();
        break;
      }
      resp.results.push_back(std::move(*r));
    }
  }
  if (traced && failure.ok() && !expired) {
    MutexLock lock(trace_mu_);
    for (const core::QueryTrace& t : traces) {
      recent_traces_.push_back(t.ToJson());
    }
    while (recent_traces_.size() > options_.max_traces) {
      recent_traces_.pop_front();
    }
  }
  std::vector<uint8_t> payload;
  if (expired) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    VITRI_METRIC_COUNTER("serving.deadline_exceeded")->Increment();
    resp.head.status = WireStatus::kDeadlineExceeded;
    resp.error = "deadline expired during execution";
    resp.results.clear();
  } else if (!failure.ok()) {
    resp.head.status = failure.IsInvalidArgument()
                           ? WireStatus::kInvalidRequest
                           : WireStatus::kInternalError;
    resp.error = failure.ToString();
    resp.results.clear();
  } else {
    resp.head.status = WireStatus::kOk;
    responses_ok_.fetch_add(1, std::memory_order_relaxed);
  }
  EncodeKnnResponse(resp, &payload);
  WriteResponse(item.session, MessageType::kKnnResponse, payload);
}

void Server::HandleInsert(WorkItem item) {
  Status st =
      sharded_ != nullptr
          ? sharded_->Insert(item.insert.video_id, item.insert.num_frames,
                             item.insert.vitris)
          : index_->Insert(item.insert.video_id, item.insert.num_frames,
                           item.insert.vitris);
  if (st.ok()) {
    responses_ok_.fetch_add(1, std::memory_order_relaxed);
    RespondSimple(item.session, MessageType::kInsertResponse, item.request_id,
                  WireStatus::kOk, "");
  } else {
    RespondSimple(item.session, MessageType::kInsertResponse, item.request_id,
                  st.IsInvalidArgument() ? WireStatus::kInvalidRequest
                                         : WireStatus::kInternalError,
                  st.ToString());
  }
}

void Server::WriteResponse(Session* session, MessageType type,
                           std::span<const uint8_t> payload) {
  std::vector<uint8_t> wire;
  EncodeFrame(type, payload, &wire);
  MutexLock lock(session->write_mu);
  if (session->fd < 0) return;
  Status st = WriteFull(session->fd, wire.data(), wire.size());
  if (!st.ok()) {
    // The peer is gone; the request was still executed and the drop is
    // observable here. Nothing to unwind.
    VITRI_METRIC_COUNTER("serving.write_errors")->Increment();
  }
}

void Server::RespondSimple(Session* session, MessageType response_type,
                           uint64_t request_id, WireStatus status,
                           std::string_view message) {
  ResponseHead head;
  head.request_id = request_id;
  head.status = status;
  std::vector<uint8_t> payload;
  EncodeSimpleResponse(head, message, &payload);
  if (status == WireStatus::kOk) {
    responses_ok_.fetch_add(1, std::memory_order_relaxed);
  }
  WriteResponse(session, response_type, payload);
}

std::string Server::BuildStatsJson() {
  json::JsonWriter w;
  w.BeginObject();
  w.Key("server");
  w.BeginObject();
  {
    MutexLock lock(state_mu_);
    w.Key("state");
    w.String(StateName(static_cast<uint8_t>(state_)));
  }
  w.Key("queue_depth");
  w.Uint(queue_.size());
  w.Key("queue_capacity");
  w.Uint(queue_.capacity());
  w.Key("workers");
  w.Uint(options_.num_workers == 0 ? 1 : options_.num_workers);
  w.Key("connections");
  w.Uint(accepted_conns_.load(std::memory_order_relaxed));
  w.Key("admitted");
  w.Uint(admitted_.load(std::memory_order_relaxed));
  w.Key("rejected_overloaded");
  w.Uint(rejected_overloaded_.load(std::memory_order_relaxed));
  w.Key("rejected_shutting_down");
  w.Uint(rejected_shutdown_.load(std::memory_order_relaxed));
  w.Key("deadline_exceeded");
  w.Uint(deadline_exceeded_.load(std::memory_order_relaxed));
  w.Key("invalid_requests");
  w.Uint(invalid_requests_.load(std::memory_order_relaxed));
  w.Key("responses_ok");
  w.Uint(responses_ok_.load(std::memory_order_relaxed));
  w.Key("index");
  w.BeginObject();
  if (sharded_ != nullptr) {
    // Sharded route: per-shard contents live in the metrics registry as
    // index.shard.<i>.* gauges; durability is single-index-only.
    w.Key("videos");
    w.Uint(sharded_->num_videos());
    w.Key("vitris");
    w.Uint(sharded_->num_vitris());
    w.Key("tree_height");
    w.Uint(sharded_->tree_height());
    w.Key("shards");
    w.Uint(sharded_->num_shards());
    w.Key("live_shards");
    w.Uint(sharded_->live_shards());
    w.Key("assignment");
    w.String(core::ShardAssignmentName(sharded_->assignment()));
    w.Key("durable");
    w.Bool(false);
    w.Key("generation");
    w.Uint(0);
    w.Key("wal_commits");
    w.Uint(0);
    w.Key("wal_durable_commits");
    w.Uint(0);
  } else {
    w.Key("videos");
    w.Uint(index_->num_videos());
    w.Key("vitris");
    w.Uint(index_->num_vitris());
    w.Key("tree_height");
    w.Uint(index_->tree_height());
    w.Key("durable");
    w.Bool(index_->durable());
    w.Key("generation");
    w.Uint(index_->generation());
    w.Key("wal_commits");
    w.Uint(index_->wal_commits());
    w.Key("wal_durable_commits");
    w.Uint(index_->wal_durable_commits());
  }
  w.EndObject();
  w.EndObject();
  w.Key("metrics");
  w.RawValue(metrics::Registry::Instance().ToJson());
  w.Key("recent_traces");
  w.BeginArray();
  {
    MutexLock lock(trace_mu_);
    for (const std::string& t : recent_traces_) w.RawValue(t);
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

void Server::RequestShutdown() {
  {
    MutexLock lock(state_mu_);
    shutdown_requested_ = true;
  }
  state_cv_.NotifyAll();
}

bool Server::WaitForShutdownRequest(uint32_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  MutexLock lock(state_mu_);
  while (!shutdown_requested_) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    state_cv_.WaitFor(lock,
                      std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - now) +
                          std::chrono::milliseconds(1));
  }
  return true;
}

Status Server::Shutdown() {
  {
    MutexLock lock(state_mu_);
    if (state_ == State::kIdle) {
      state_ = State::kStopped;
      return Status::OK();
    }
    if (state_ == State::kStopped) return Status::OK();
    if (state_ == State::kStopping) {
      while (state_ != State::kStopped) state_cv_.Wait(lock);
      return Status::OK();
    }
    state_ = State::kStopping;
  }
  // 1. Stop admission: every TryPush from here fails, so sessions answer
  //    new work with ShuttingDown while admitted work keeps draining.
  queue_.Close();
  // 2. Stop accepting: wake the listener's poll and join it, so no new
  //    session can appear below.
  if (wake_pipe_[1] >= 0) {
    const uint8_t b = 0;
    Status ignored = WriteFull(wake_pipe_[1], &b, 1);
    (void)ignored;
  }
  if (listener_.joinable()) listener_.join();
  // 3. Drain: Pop returns queued items until closed-and-empty, so every
  //    admitted request is executed and answered before workers exit.
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // 4. Close sessions. SHUT_RD (not RDWR) so a reader blocked in read()
  //    sees EOF while its final inline response can still flush; fds are
  //    closed only after the readers are joined, so no worker or reader
  //    can race the close.
  {
    MutexLock lock(sessions_mu_);
    for (std::unique_ptr<Session>& s : sessions_) {
      if (s->fd >= 0) ::shutdown(s->fd, SHUT_RD);
    }
    for (std::unique_ptr<Session>& s : sessions_) {
      if (s->reader.joinable()) s->reader.join();
      CloseFd(&s->fd);
    }
  }
  CloseFd(&listen_fd_);
  CloseFd(&wake_pipe_[0]);
  CloseFd(&wake_pipe_[1]);
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }
  // 5. Make acknowledged inserts durable past the group-commit window.
  Status st = Status::OK();
  if (options_.checkpoint_on_shutdown && index_ != nullptr &&
      index_->durable()) {
    st = index_->Checkpoint();
  }
  {
    MutexLock lock(state_mu_);
    state_ = State::kStopped;
  }
  state_cv_.NotifyAll();
  return st;
}

}  // namespace vitri::serving
