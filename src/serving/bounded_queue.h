#ifndef VITRI_SERVING_BOUNDED_QUEUE_H_
#define VITRI_SERVING_BOUNDED_QUEUE_H_

#include <cstddef>
#include <deque>
#include <utility>

#include "common/annotated_lock.h"

namespace vitri::serving {

/// Fixed-capacity MPMC queue — the admission-control point of the
/// serving layer (DESIGN.md §15). Producers never block: TryPush fails
/// when the queue is full (the caller answers `Overloaded`) or closed
/// (`ShuttingDown`), so a slow consumer back-pressures clients with a
/// typed status instead of unbounded memory. Consumers block in Pop
/// until an item arrives or the queue is closed *and* drained — Close()
/// deliberately lets the remaining items flow out, which is what lets a
/// graceful shutdown answer every request it already admitted.
///
/// Lock discipline: one Mutex guards the deque and the closed flag;
/// both are annotated so the clang-tsa gate covers this type like every
/// other locking type in the repo.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Admits `item` unless the queue is full or closed. Never blocks.
  bool TryPush(T item) VITRI_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available (true) or the queue is closed and
  /// empty (false — the consumer should exit its loop).
  bool Pop(T* out) VITRI_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) cv_.Wait(lock);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stops admission; queued items still drain through Pop. Idempotent.
  void Close() VITRI_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  size_t size() const VITRI_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }
  bool closed() const VITRI_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> items_ VITRI_GUARDED_BY(mu_);
  bool closed_ VITRI_GUARDED_BY(mu_) = false;
};

}  // namespace vitri::serving

#endif  // VITRI_SERVING_BOUNDED_QUEUE_H_
