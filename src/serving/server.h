#ifndef VITRI_SERVING_SERVER_H_
#define VITRI_SERVING_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/annotated_lock.h"
#include "common/status.h"
#include "core/index.h"
#include "serving/bounded_queue.h"
#include "serving/protocol.h"

namespace vitri::core {
class ShardedViTriIndex;
}  // namespace vitri::core

namespace vitri::serving {

/// Configuration of a vitrid server instance.
struct ServerOptions {
  /// Listen on a unix-domain socket at this path (created on Start,
  /// unlinked on Shutdown). Mutually exclusive with tcp_port.
  std::string unix_socket_path;
  /// Listen on 127.0.0.1:<port> (0 = kernel-assigned; read it back via
  /// Server::tcp_port()). -1 disables TCP.
  int tcp_port = -1;
  /// Admission control: work requests beyond this many queued are
  /// rejected with WireStatus::kOverloaded.
  size_t queue_capacity = 256;
  /// Worker threads executing queued Knn/Insert requests.
  size_t num_workers = 4;
  /// Intra-request parallelism: BatchKnn fan-out width per request
  /// (1 = inline; the request-level workers above are the primary
  /// concurrency axis).
  size_t knn_threads = 1;
  /// Record a per-stage QueryTrace for every Nth Knn request (0 = off)
  /// and keep the most recent `max_traces` of them for the stats reply.
  size_t trace_every = 0;
  size_t max_traces = 8;
  /// On a durable index, fold the WAL into a fresh checkpoint
  /// generation (core/recovery.cc) as the last step of Shutdown().
  bool checkpoint_on_shutdown = true;
  /// Test seam mirroring DurabilityOptions::crash_hook: called with a
  /// named point on the request path ("session.enqueued",
  /// "worker.dequeue", "worker.execute"). Production leaves it empty;
  /// the lifecycle tests use it to hold a worker at a known point.
  std::function<void(std::string_view point)> stage_hook;
};

/// `vitrid` — a long-lived server around one ViTriIndex (DESIGN.md §15).
///
/// Threading model: one listener thread accepts connections; each
/// connection gets a session reader thread that decodes frames and
/// answers the admin plane (ping/stats/shutdown) inline; work requests
/// (knn/insert) pass through a bounded queue to `num_workers` worker
/// threads. Admission control, per-request deadlines, and the drain on
/// shutdown all emit *typed* wire statuses, so a client can always tell
/// "rejected" from "failed".
///
/// Request lifecycle guarantees:
///   * every frame read off a connection gets exactly one response
///     (admitted work is answered by a worker — even during shutdown,
///     which drains the queue before stopping — and rejected work is
///     answered immediately with Overloaded/ShuttingDown/Invalid);
///   * a request whose deadline has passed is answered
///     DeadlineExceeded without touching the index; deadlines are
///     re-checked between the per-query stages of a multi-query
///     request;
///   * Shutdown() stops admission first, then drains workers, then
///     closes sessions, then (durable index + checkpoint_on_shutdown)
///     checkpoints via the recovery path, so acknowledged inserts are
///     never lost behind a group-commit window.
///
/// Shutdown() must not be called from a session/worker thread (it joins
/// them); in-band shutdown requests instead signal
/// WaitForShutdownRequest(), on which the owning thread (tools/vitrid.cc)
/// blocks.
class Server {
 public:
  Server(core::ViTriIndex* index, ServerOptions options);
  /// Routing-layer variant: requests scatter-gather across the sharded
  /// index's shards instead of one ViTriIndex. Durability (and thus
  /// checkpoint_on_shutdown) and query tracing are single-index-only
  /// features; the sharded path serves knn/insert/stats.
  Server(core::ShardedViTriIndex* sharded, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured endpoint and starts the listener and workers.
  Status Start() VITRI_EXCLUDES(state_mu_);

  /// Graceful stop: close admission, drain every queued/in-flight
  /// request, answer all of them, close sessions, checkpoint if
  /// configured. Idempotent; concurrent callers block until stopped.
  /// Returns the checkpoint status (OK when not durable / not
  /// configured).
  Status Shutdown() VITRI_EXCLUDES(state_mu_);

  /// True once a client sent a ShutdownRequest frame (or
  /// RequestShutdown() was called); blocks up to timeout_ms.
  bool WaitForShutdownRequest(uint32_t timeout_ms)
      VITRI_EXCLUDES(state_mu_);

  /// Marks shutdown as requested and wakes WaitForShutdownRequest
  /// waiters. Does not stop the server by itself.
  void RequestShutdown() VITRI_EXCLUDES(state_mu_);

  /// Bound TCP port (after Start with tcp_port >= 0), else -1.
  int tcp_port() const { return bound_tcp_port_; }
  const ServerOptions& options() const { return options_; }

  /// Point-in-time depth of the request queue (tests poll this).
  size_t queue_depth() const { return queue_.size(); }

  /// Monotonic microseconds (steady clock) — the time base of every
  /// deadline computation.
  static uint64_t NowMicros();

  /// The stats document served to `vitrid stats`: a "server" block
  /// (queue/admission/drain counters, index state), the process-wide
  /// metrics registry, and the most recent sampled query traces.
  std::string BuildStatsJson() VITRI_EXCLUDES(trace_mu_);

 private:
  enum class State : uint8_t { kIdle, kRunning, kStopping, kStopped };

  /// One accepted connection. Sessions are appended by the listener and
  /// kept alive (fd closed, object retained) until Shutdown joins them,
  /// so the raw Session* inside queued WorkItems can never dangle.
  struct Session {
    int fd = -1;
    std::thread reader;
    /// Serializes frame writes: worker responses and inline (admin)
    /// responses interleave on the same stream.
    Mutex write_mu;
    std::atomic<bool> read_closed{false};
  };

  /// A queued work request (knn or insert), decoded by the session
  /// reader; `deadline_us` is absolute (0 = none).
  struct WorkItem {
    Session* session = nullptr;
    MessageType type = MessageType::kKnnRequest;
    uint64_t request_id = 0;
    uint64_t deadline_us = 0;
    uint64_t enqueue_us = 0;
    KnnRequest knn;
    InsertRequest insert;
  };

  Status StartListener();
  void ListenerLoop();
  void SessionLoop(Session* session);
  void WorkerLoop();

  /// Reads one frame; returns false on clean EOF / error / shutdown.
  bool ReadOneFrame(Session* session, Frame* frame);
  void HandleFrame(Session* session, Frame frame);
  void HandleKnn(WorkItem item);
  void HandleInsert(WorkItem item);

  void WriteResponse(Session* session, MessageType type,
                     std::span<const uint8_t> payload);
  void RespondSimple(Session* session, MessageType response_type,
                     uint64_t request_id, WireStatus status,
                     std::string_view message);

  void Hook(std::string_view point) {
    if (options_.stage_hook) options_.stage_hook(point);
  }

  /// Exactly one of these is non-null.
  core::ViTriIndex* index_;
  core::ShardedViTriIndex* sharded_ = nullptr;
  ServerOptions options_;

  int listen_fd_ = -1;
  int bound_tcp_port_ = -1;
  /// Self-pipe waking the listener's poll() out of accept on shutdown.
  int wake_pipe_[2] = {-1, -1};
  std::thread listener_;
  std::vector<std::thread> workers_;

  BoundedQueue<WorkItem> queue_;

  mutable Mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_
      VITRI_GUARDED_BY(sessions_mu_);

  mutable Mutex state_mu_;
  CondVar state_cv_;
  State state_ VITRI_GUARDED_BY(state_mu_) = State::kIdle;
  bool shutdown_requested_ VITRI_GUARDED_BY(state_mu_) = false;

  mutable Mutex trace_mu_;
  /// Most recent sampled query traces, pre-rendered to JSON.
  std::deque<std::string> recent_traces_ VITRI_GUARDED_BY(trace_mu_);
  std::atomic<uint64_t> knn_seq_{0};

  /// Server-block counters (also mirrored into the metrics registry as
  /// serving.* so `vitrid stats` exposes them both ways).
  std::atomic<uint64_t> accepted_conns_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_overloaded_{0};
  std::atomic<uint64_t> rejected_shutdown_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> invalid_requests_{0};
  std::atomic<uint64_t> responses_ok_{0};
};

}  // namespace vitri::serving

#endif  // VITRI_SERVING_SERVER_H_
