#include "geometry/paper_series.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "geometry/special_functions.h"

namespace vitri::geometry {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

double SinePowerIntegral(int m, double alpha) {
  assert(m >= 0);
  if (alpha <= 0.0) return 0.0;
  // I_0 = alpha, I_1 = 1 - cos(alpha),
  // I_m = -cos(a) sin^{m-1}(a) / m + (m-1)/m * I_{m-2}.
  const double c = std::cos(alpha);
  const double s = std::sin(alpha);
  double i_even = alpha;        // I_0
  double i_odd = 1.0 - c;       // I_1
  if (m == 0) return i_even;
  if (m == 1) return i_odd;
  double result = 0.0;
  for (int k = 2; k <= m; ++k) {
    double& prev = (k % 2 == 0) ? i_even : i_odd;
    const double value =
        -c * std::pow(s, k - 1) / k + (k - 1.0) / k * prev;
    prev = value;
    result = value;
  }
  return result;
}

double PaperBallVolume(int n, double r) {
  assert(n >= 1);
  if (r <= 0.0) return 0.0;
  double log_coeff;
  if (n % 2 == 0) {
    // pi^{n/2} / (n/2)!
    const int half = n / 2;
    log_coeff = half * std::log(kPi) - LogGamma(half + 1.0);
  } else {
    // 2^{n+1} * pi^{(n-1)/2} * ((n+1)/2)! / (n+1)!
    const int half = (n - 1) / 2;
    log_coeff = (n + 1) * std::log(2.0) + half * std::log(kPi) +
                LogGamma((n + 1) / 2 + 1.0) - LogGamma(n + 2.0);
  }
  return std::exp(log_coeff + n * std::log(r));
}

double PaperSectorVolume(int n, double r, double alpha) {
  assert(n >= 2);
  if (r <= 0.0 || alpha <= 0.0) return 0.0;
  // R^n * 2 pi^{(n-1)/2} / (n Gamma((n-1)/2)) * Int_0^alpha sin^{n-2}.
  const double log_coeff = std::log(2.0) + 0.5 * (n - 1) * std::log(kPi) -
                           std::log(static_cast<double>(n)) -
                           LogGamma(0.5 * (n - 1));
  return std::exp(log_coeff + n * std::log(r)) *
         SinePowerIntegral(n - 2, alpha);
}

double PaperConeVolume(int n, double r, double alpha) {
  assert(n >= 2);
  if (r <= 0.0 || alpha <= 0.0) return 0.0;
  // R^n * pi^{(n-1)/2} / (n Gamma((n+1)/2)) * cos(a) sin^{n-1}(a).
  const double log_coeff = 0.5 * (n - 1) * std::log(kPi) -
                           std::log(static_cast<double>(n)) -
                           LogGamma(0.5 * (n + 1));
  return std::exp(log_coeff + n * std::log(r)) * std::cos(alpha) *
         std::pow(std::sin(alpha), n - 1);
}

double PaperCapVolume(int n, double r, double alpha) {
  return PaperSectorVolume(n, r, alpha) - PaperConeVolume(n, r, alpha);
}

double PaperCapVolumeFraction(int n, double alpha) {
  return PaperCapVolume(n, 1.0, alpha) / PaperBallVolume(n, 1.0);
}

}  // namespace vitri::geometry
