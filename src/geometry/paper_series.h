#ifndef VITRI_GEOMETRY_PAPER_SERIES_H_
#define VITRI_GEOMETRY_PAPER_SERIES_H_

namespace vitri::geometry {

/// The paper's Section 3.2 volume formulas, implemented verbatim in their
/// angle-parameterized form. These are kept separate from hypersphere.h
/// (the numerically robust beta-function forms) so that:
///  * property tests can cross-validate the two derivations, and
///  * bench/ablation_cap_method can compare their accuracy and speed.
///
/// All angles are the colatitude alpha of Figure 1: the half-angle at the
/// ball center subtended by the sector/cone/cap, in radians.

/// Integral of sin^m(theta) over [0, alpha], m >= 0, via the exact
/// reduction I_m = -cos(a) sin^{m-1}(a)/m + (m-1)/m * I_{m-2}. This is the
/// closed form the paper's even/odd finite series expand to.
double SinePowerIntegral(int m, double alpha);

/// V of the n-ball of radius r using the paper's even/odd factorial
/// closed forms (n >= 1).
double PaperBallVolume(int n, double r);

/// V of the hypersector (O, R, alpha), n >= 2, alpha in [0, pi].
double PaperSectorVolume(int n, double r, double alpha);

/// V of the hypercone inscribed in that sector, n >= 2. Negative for
/// alpha > pi/2, by design: V_cap = V_sector - V_cone then remains valid
/// past the hemisphere (the paper's case 3 geometry).
double PaperConeVolume(int n, double r, double alpha);

/// V of the hypercap = V_sector - V_cone, n >= 2, alpha in [0, pi].
double PaperCapVolume(int n, double r, double alpha);

/// Cap volume as a fraction of the full ball volume (for comparison with
/// CapVolumeFractionFromAngle).
double PaperCapVolumeFraction(int n, double alpha);

}  // namespace vitri::geometry

#endif  // VITRI_GEOMETRY_PAPER_SERIES_H_
