#ifndef VITRI_GEOMETRY_HYPERSPHERE_H_
#define VITRI_GEOMETRY_HYPERSPHERE_H_

#include <cstdint>

namespace vitri::geometry {

/// Volumes of n-dimensional balls, caps, and ball-ball intersections.
///
/// Raw volumes in high dimension vanish (or explode) far beyond double
/// range once radii stray from 1, so this module exposes two families:
///  * log-volumes  — `LogBallVolume` etc., exact in log-space;
///  * fractions    — cap/intersection volume divided by a full ball
///                   volume, always in [0, 1] and stable for any n.
/// The ViTri similarity kernel is built on the fraction family
/// (see DESIGN.md, "Numerical notes").

/// log V of the unit n-ball: (n/2)*log(pi) - logGamma(n/2 + 1).
/// Memoized for n < 256 (one lgamma per dimension per process), so the
/// per-call cost on the similarity hot path is a table load.
double LogUnitBallVolume(int n);

/// log V of the n-ball with radius r (r > 0): log V_unit + n*log(r).
double LogBallVolume(int n, double r);

/// V of the n-ball with radius r; may underflow/overflow for large n —
/// prefer LogBallVolume in library code.
double BallVolume(int n, double r);

/// Fraction of an n-ball's volume occupied by a spherical cap of height h,
/// h in [0, 2r]. h <= r uses (1/2) I_x((n+1)/2, 1/2) with
/// x = (2rh - h^2)/r^2 (Li 2011); taller caps use the complement.
/// Out-of-range h is clamped.
double CapVolumeFraction(int n, double r, double h);

/// Cap volume (absolute). Prefer CapVolumeFraction for large n.
double CapVolume(int n, double r, double h);

/// Fraction of an n-ball's volume occupied by the cap with colatitude
/// angle alpha (angle from the cap's pole axis), alpha in [0, pi].
/// Equivalent to CapVolumeFraction with h = r*(1 - cos(alpha)).
double CapVolumeFractionFromAngle(int n, double alpha);

/// Description of the intersection lens between two n-balls at center
/// distance d with radii r1 and r2.
struct BallIntersection {
  /// Volume of the lens divided by the volume of the *smaller* ball;
  /// in [0, 1]. 1 means the smaller ball is fully contained.
  double fraction_of_smaller = 0.0;
  /// log of the absolute lens volume; -inf when disjoint.
  double log_volume = 0.0;
  /// True when the balls are disjoint (d >= r1 + r2) or a radius is 0.
  bool disjoint = true;
  /// True when the smaller ball lies entirely inside the larger
  /// (d <= |r1 - r2|).
  bool contained = false;
};

/// Computes the intersection of two n-balls. Handles all four geometric
/// cases of the paper's Section 4.2 uniformly:
///   1. disjoint, 2./3. partial overlap (two caps; one may exceed a
///   hemisphere), 4. containment.
/// Zero-radius balls are treated as points: contained if within the other
/// ball (fraction 1), else disjoint.
BallIntersection IntersectBalls(int n, double d, double r1, double r2);

}  // namespace vitri::geometry

#endif  // VITRI_GEOMETRY_HYPERSPHERE_H_
