#include "geometry/hypersphere.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <limits>

#include "geometry/special_functions.h"

namespace vitri::geometry {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double ComputeLogUnitBallVolume(int n) {
  return 0.5 * n * std::log(kPi) - LogGamma(0.5 * n + 1.0);
}

// The unit-ball log-volume is evaluated once per ViTri-pair density and
// intersection-volume computation, always at the (few, small) feature
// dimensionalities of the workload; memoizing the lgamma-based value in
// a fixed-size table makes it a load. The table is built on first use
// (thread-safe magic-static initialization) and dimensions past the
// table fall back to direct evaluation.
constexpr int kLogUnitBallCacheSize = 256;

const std::array<double, kLogUnitBallCacheSize>& LogUnitBallCache() {
  static const std::array<double, kLogUnitBallCacheSize> cache = [] {
    std::array<double, kLogUnitBallCacheSize> c{};
    for (int n = 1; n < kLogUnitBallCacheSize; ++n) {
      c[static_cast<size_t>(n)] = ComputeLogUnitBallVolume(n);
    }
    return c;
  }();
  return cache;
}

}  // namespace

double LogUnitBallVolume(int n) {
  assert(n >= 1);
  if (n < kLogUnitBallCacheSize) {
    return LogUnitBallCache()[static_cast<size_t>(n)];
  }
  return ComputeLogUnitBallVolume(n);
}

double LogBallVolume(int n, double r) {
  assert(n >= 1);
  if (r <= 0.0) return kNegInf;
  return LogUnitBallVolume(n) + n * std::log(r);
}

double BallVolume(int n, double r) {
  if (r <= 0.0) return 0.0;
  return std::exp(LogBallVolume(n, r));
}

double CapVolumeFraction(int n, double r, double h) {
  assert(n >= 1);
  assert(r > 0.0);
  if (h <= 0.0) return 0.0;
  if (h >= 2.0 * r) return 1.0;
  if (h > r) return 1.0 - CapVolumeFraction(n, r, 2.0 * r - h);
  // The cap fraction is (1/2) I_x((n+1)/2, 1/2) with x = (2rh - h^2)/r^2
  // = 1 - ((r-h)/r)^2. Evaluating through the complement t = (r-h)/r and
  // the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) avoids the catastrophic
  // cancellation of computing x directly when h is close to r.
  const double t = std::clamp((r - h) / r, 0.0, 1.0);
  return 0.5 *
         (1.0 - RegularizedIncompleteBeta(0.5, 0.5 * (n + 1), t * t));
}

double CapVolume(int n, double r, double h) {
  return CapVolumeFraction(n, r, h) * BallVolume(n, r);
}

double CapVolumeFractionFromAngle(int n, double alpha) {
  assert(n >= 1);
  if (alpha <= 0.0) return 0.0;
  if (alpha >= kPi) return 1.0;
  return CapVolumeFraction(n, 1.0, 1.0 - std::cos(alpha));
}

BallIntersection IntersectBalls(int n, double d, double r1, double r2) {
  assert(n >= 1);
  assert(d >= 0.0);
  BallIntersection out;
  const double r_small = std::min(r1, r2);
  const double r_large = std::max(r1, r2);

  if (r_small < 0.0) {
    out.log_volume = kNegInf;
    return out;  // Degenerate: nothing to intersect.
  }

  // Two point "balls": they coincide iff d == 0.
  if (r_large == 0.0) {
    out.disjoint = d > 0.0;
    out.contained = !out.disjoint;
    out.fraction_of_smaller = out.contained ? 1.0 : 0.0;
    out.log_volume = kNegInf;
    return out;
  }

  // Zero-radius small ball: a point. Contained iff inside the large ball.
  if (r_small == 0.0) {
    out.disjoint = d > r_large;
    out.contained = !out.disjoint;
    out.fraction_of_smaller = out.contained ? 1.0 : 0.0;
    out.log_volume = kNegInf;  // A point has zero volume.
    return out;
  }

  // Case 1 (paper): disjoint.
  if (d >= r1 + r2) {
    out.log_volume = kNegInf;
    return out;
  }

  // Case 4 (paper): smaller ball fully contained in the larger.
  if (d <= r_large - r_small) {
    out.disjoint = false;
    out.contained = true;
    out.fraction_of_smaller = 1.0;
    out.log_volume = LogBallVolume(n, r_small);
    return out;
  }

  // Cases 2 and 3 (paper): lens = cap of ball 1 + cap of ball 2. The
  // intersection hyperplane sits at signed distance c1 from O1 along the
  // center line; a negative c_i means that ball's cap exceeds a
  // hemisphere (the paper's case 3), which CapVolumeFraction handles via
  // heights h_i in (r_i, 2 r_i).
  out.disjoint = false;
  const double c1 = (d * d + r1 * r1 - r2 * r2) / (2.0 * d);
  const double c2 = d - c1;
  const double h1 = std::clamp(r1 - c1, 0.0, 2.0 * r1);
  const double h2 = std::clamp(r2 - c2, 0.0, 2.0 * r2);

  const double frac1 = CapVolumeFraction(n, r1, h1);  // of ball 1's volume
  const double frac2 = CapVolumeFraction(n, r2, h2);  // of ball 2's volume

  // Express both caps as fractions of the *smaller* ball. The volume
  // ratio V(r_i)/V(r_small) = (r_i/r_small)^n can overflow for the larger
  // ball in high dimension, so combine in log-space.
  const double log_v_small = LogBallVolume(n, r_small);
  const double log_cap1 =
      frac1 > 0.0 ? std::log(frac1) + LogBallVolume(n, r1) : kNegInf;
  const double log_cap2 =
      frac2 > 0.0 ? std::log(frac2) + LogBallVolume(n, r2) : kNegInf;

  // log(exp(a) + exp(b)) computed stably.
  double log_lens;
  if (log_cap1 == kNegInf && log_cap2 == kNegInf) {
    log_lens = kNegInf;
  } else {
    const double m = std::max(log_cap1, log_cap2);
    log_lens =
        m + std::log(std::exp(log_cap1 - m) + std::exp(log_cap2 - m));
  }
  out.log_volume = log_lens;
  out.fraction_of_smaller =
      log_lens == kNegInf
          ? 0.0
          : std::clamp(std::exp(log_lens - log_v_small), 0.0, 1.0);
  return out;
}

}  // namespace vitri::geometry
