#ifndef VITRI_GEOMETRY_SPECIAL_FUNCTIONS_H_
#define VITRI_GEOMETRY_SPECIAL_FUNCTIONS_H_

namespace vitri::geometry {

/// Natural log of the Gamma function for x > 0 (Lanczos approximation,
/// ~15 significant digits). Implemented locally so results are identical
/// across platforms/libm versions.
double LogGamma(double x);

/// Natural log of the Beta function B(a, b), a > 0, b > 0.
double LogBeta(double a, double b);

/// Regularized incomplete beta function I_x(a, b) for a > 0, b > 0 and
/// x in [0, 1], evaluated by the continued-fraction expansion with the
/// standard symmetry switch for numerical stability.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Error function complement of the standard normal CDF helpers used by
/// property tests: Phi(x) = P(N(0,1) <= x).
double StdNormalCdf(double x);

}  // namespace vitri::geometry

#endif  // VITRI_GEOMETRY_SPECIAL_FUNCTIONS_H_
