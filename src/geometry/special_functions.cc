#include "geometry/special_functions.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace vitri::geometry {
namespace {

// Lanczos coefficients (g = 7, n = 9), standard double-precision set.
constexpr double kLanczos[9] = {
    0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
    771.32342877765313,   -176.61502916214059, 12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};

constexpr double kPi = 3.14159265358979323846;

// Continued fraction for the incomplete beta function (Numerical Recipes
// "betacf"), evaluated with modified Lentz's method.
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 500;
  constexpr double kEps = 3e-16;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double LogGamma(double x) {
  assert(x > 0.0);
  if (x < 0.5) {
    // Reflection formula keeps the Lanczos series in its accurate range.
    return std::log(kPi / std::sin(kPi * x)) - LogGamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kLanczos[0];
  for (int i = 1; i < 9; ++i) {
    sum += kLanczos[i] / (z + i);
  }
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * kPi) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

double LogBeta(double a, double b) {
  return LogGamma(a) + LogGamma(b) - LogGamma(a + b);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  assert(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_front =
      a * std::log(x) + b * std::log1p(-x) - LogBeta(a, b);
  const double front = std::exp(log_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - std::exp(b * std::log1p(-x) + a * std::log(x) -
                        LogBeta(b, a)) *
                   BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StdNormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

}  // namespace vitri::geometry
