#ifndef VITRI_COMMON_CHECK_H_
#define VITRI_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "common/result.h"
#include "common/status.h"

namespace vitri {

/// Invariant-checking macros, modeled after the glog CHECK family.
///
///   VITRI_CHECK(cond) << "context";   // Always on; aborts on failure.
///   VITRI_DCHECK(cond) << "context";  // Debug builds only (see below).
///   VITRI_CHECK_OK(status_or_result); // Aborts on a non-OK Status/Result.
///   VITRI_DCHECK_OK(expr);            // Debug-only variant.
///
/// VITRI_DCHECK and VITRI_DCHECK_OK compile to nothing (the condition is
/// *not evaluated*) unless dchecks are enabled. Dchecks are on in builds
/// without NDEBUG (i.e. Debug), and can be forced into any build type by
/// defining VITRI_ENABLE_DCHECKS (CMake: -DVITRI_DCHECKS=ON).
///
/// Checks are for programming errors — violated internal invariants that
/// have no sane recovery. Expected runtime failures (I/O errors, corrupt
/// input) must keep flowing through Status/Result.

#if defined(VITRI_ENABLE_DCHECKS)
#define VITRI_DCHECKS_ENABLED 1
#elif !defined(NDEBUG)
#define VITRI_DCHECKS_ENABLED 1
#else
#define VITRI_DCHECKS_ENABLED 0
#endif

namespace internal {

/// Collects the failure message and aborts the process on destruction.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr) {
    stream_ << "VITRI_CHECK failed at " << file << ":" << line << ": "
            << expr;
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  ~CheckFailure() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed operands of compiled-out VITRI_DCHECK statements.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

inline const Status& ToStatus(const Status& status) { return status; }

template <typename T>
const Status& ToStatus(const Result<T>& result) {
  return result.status();
}

}  // namespace internal

/// Aborts (after printing file:line, the expression, and any streamed
/// message) when `cond` is false.
#define VITRI_CHECK(cond)                                       \
  while (!(cond))                                               \
  ::vitri::internal::CheckFailure(__FILE__, __LINE__, #cond).stream()

#if VITRI_DCHECKS_ENABLED
#define VITRI_DCHECK(cond) VITRI_CHECK(cond)
#else
// `false && (cond)` keeps the condition compiled (names stay checked)
// but never evaluated: side effects inside VITRI_DCHECK vanish in
// release builds by design.
#define VITRI_DCHECK(cond) \
  while (false && static_cast<bool>(cond)) ::vitri::internal::NullStream()
#endif

/// Aborts when `expr` (a Status expression) is not OK.
#define VITRI_CHECK_OK(expr)                                              \
  do {                                                                    \
    const ::vitri::Status _vitri_check_status =                           \
        ::vitri::internal::ToStatus(expr);                                \
    while (!_vitri_check_status.ok())                                     \
      ::vitri::internal::CheckFailure(__FILE__, __LINE__, #expr).stream() \
          << " -> " << _vitri_check_status.ToString();                    \
  } while (false)

#if VITRI_DCHECKS_ENABLED
#define VITRI_DCHECK_OK(expr) VITRI_CHECK_OK(expr)
#else
#define VITRI_DCHECK_OK(expr)                            \
  while (false && ::vitri::internal::ToStatus(expr).ok()) \
  static_cast<void>(0)
#endif

}  // namespace vitri

#endif  // VITRI_COMMON_CHECK_H_
