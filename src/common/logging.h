#ifndef VITRI_COMMON_LOGGING_H_
#define VITRI_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace vitri {

/// Severity levels for the library logger.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. Global threshold defaults to
/// kWarn so library internals stay quiet in benchmarks unless asked.
class Logger {
 public:
  /// Sets the global minimum level that will be emitted.
  static void SetLevel(LogLevel level);

  /// Current global minimum level.
  static LogLevel GetLevel();

  /// Emits one line at `level` (no-op below the threshold).
  static void Log(LogLevel level, const std::string& message);
};

namespace internal {

/// Stream-style one-line log statement; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace vitri

#define VITRI_LOG(level) \
  ::vitri::internal::LogMessage(::vitri::LogLevel::level).stream()

#endif  // VITRI_COMMON_LOGGING_H_
