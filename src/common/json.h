#ifndef VITRI_COMMON_JSON_H_
#define VITRI_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace vitri::json {

/// Minimal JSON support for the observability layer: a streaming writer
/// used by the metrics registry, query traces, `vitri stats --json`, and
/// the BENCH_<name>.json artifacts, plus a small recursive-descent
/// parser so tests can prove every emitter round-trips. Not a
/// general-purpose JSON library: no comments, no \u escapes beyond
/// pass-through, numbers are doubles (plus an exact int64 fast path).

/// Streaming writer producing deterministic, compact JSON. Keys are
/// emitted in call order; the caller is responsible for uniqueness.
/// Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("name"); w.String("knn");
///   w.Key("pages"); w.Uint(42);
///   w.EndObject();
///   std::string out = w.str();
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  /// Emits the key of the next value (inside an object).
  void Key(std::string_view key);
  void String(std::string_view value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  /// Doubles print with enough digits to round-trip (max_digits10);
  /// non-finite values (JSON has no literal for them) emit null.
  void Double(double value);
  void Bool(bool value);
  void Null();
  /// Splices a pre-rendered JSON document in value position (e.g. a
  /// Registry::ToJson() blob nested inside a larger report). The caller
  /// vouches that `json` is well-formed.
  void RawValue(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();

  std::string out_;
  /// One entry per open container: whether a value has been emitted
  /// (so the next one needs a comma separator).
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes). Exposed for the writer's tests.
std::string EscapeJson(std::string_view s);

/// Parsed JSON value (test-side of the round-trip contract).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  /// Ordered map: lookups by key, deterministic iteration.
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member access; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses one JSON document (object, array, or scalar). Trailing
/// non-whitespace is an error.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace vitri::json

#endif  // VITRI_COMMON_JSON_H_
