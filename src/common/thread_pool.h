#ifndef VITRI_COMMON_THREAD_POOL_H_
#define VITRI_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotated_lock.h"

namespace vitri {

/// Fixed-size thread pool with a FIFO task queue. Deliberately simple —
/// no work stealing, no priorities: the workloads it serves (per-query
/// KNN fan-out, per-video summarization) are embarrassingly parallel
/// batches of similar-sized tasks, so a shared queue is enough.
///
/// Thread-safety: Submit() and ParallelFor() may be called from any
/// thread, including concurrently. Tasks must not throw (the library is
/// Status-based; an escaping exception terminates the process) and must
/// not Submit() work they then wait on from inside the pool — that can
/// deadlock a fully busy pool. `mu_` guards the task queue and the stop
/// flag; workers hold no other lock while draining.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task for asynchronous execution.
  void Submit(std::function<void()> task) VITRI_EXCLUDES(mu_);

  /// Runs body(i) for every i in [0, n), spread across the workers, and
  /// blocks until all n calls returned. The calling thread only waits;
  /// indices are claimed dynamically, so per-index cost imbalance is
  /// tolerated. Safe to call repeatedly; each call is independent.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body)
      VITRI_EXCLUDES(mu_);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0).
  static size_t HardwareThreads();

 private:
  void WorkerLoop() VITRI_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ VITRI_GUARDED_BY(mu_);
  bool stop_ VITRI_GUARDED_BY(mu_) = false;
};

}  // namespace vitri

#endif  // VITRI_COMMON_THREAD_POOL_H_
