#ifndef VITRI_COMMON_THREAD_POOL_H_
#define VITRI_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vitri {

/// Fixed-size thread pool with a FIFO task queue. Deliberately simple —
/// no work stealing, no priorities: the workloads it serves (per-query
/// KNN fan-out, per-video summarization) are embarrassingly parallel
/// batches of similar-sized tasks, so a shared queue is enough.
///
/// Thread-safety: Submit() and ParallelFor() may be called from any
/// thread, including concurrently. Tasks must not throw (the library is
/// Status-based; an escaping exception terminates the process) and must
/// not Submit() work they then wait on from inside the pool — that can
/// deadlock a fully busy pool.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), spread across the workers, and
  /// blocks until all n calls returned. The calling thread only waits;
  /// indices are claimed dynamically, so per-index cost imbalance is
  /// tolerated. Safe to call repeatedly; each call is independent.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0).
  static size_t HardwareThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace vitri

#endif  // VITRI_COMMON_THREAD_POOL_H_
