#ifndef VITRI_COMMON_STATUS_H_
#define VITRI_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace vitri {

/// Error categories used across the library. Modeled after the
/// RocksDB/Arrow convention: library code reports failures through
/// Status/Result instead of exceptions.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIoError = 3,
  kCorruption = 4,
  kOutOfRange = 5,
  kNotSupported = 6,
  kInternal = 7,
  kResourceExhausted = 8,
};

/// Returns a human-readable name for a status code ("Ok", "IoError", ...).
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy in the OK case
/// (no allocation); error states carry a message. [[nodiscard]]: a
/// dropped Status is a swallowed error, so ignoring one is a compile
/// error under -Werror; truly fire-and-forget calls must spell out
/// `(void)expr`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and early-returns it on error.
#define VITRI_RETURN_IF_ERROR(expr)               \
  do {                                            \
    ::vitri::Status _vitri_status = (expr);       \
    if (!_vitri_status.ok()) return _vitri_status; \
  } while (false)

}  // namespace vitri

#endif  // VITRI_COMMON_STATUS_H_
