#ifndef VITRI_COMMON_CODING_H_
#define VITRI_COMMON_CODING_H_

#include <cstdint>
#include <cstring>

namespace vitri {

/// Fixed-width little-endian encoding helpers for on-page records.
/// memcpy-based so they are alignment-safe and well-defined for any
/// byte buffer.

inline void EncodeU16(uint8_t* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
inline void EncodeU32(uint8_t* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeU64(uint8_t* dst, uint64_t v) { std::memcpy(dst, &v, 8); }
inline void EncodeDouble(uint8_t* dst, double v) { std::memcpy(dst, &v, 8); }

inline uint16_t DecodeU16(const uint8_t* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeU32(const uint8_t* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeU64(const uint8_t* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}
inline double DecodeDouble(const uint8_t* src) {
  double v;
  std::memcpy(&v, src, 8);
  return v;
}

}  // namespace vitri

#endif  // VITRI_COMMON_CODING_H_
