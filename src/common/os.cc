#include "common/os.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vitri {

std::string ErrnoString(int errno_value) {
  char buf[256] = {};
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // GNU strerror_r returns a pointer that may or may not be buf.
  return std::string(strerror_r(errno_value, buf, sizeof(buf)));
#else
  // XSI strerror_r fills buf and returns 0 on success.
  if (strerror_r(errno_value, buf, sizeof(buf)) != 0) {
    std::snprintf(buf, sizeof(buf), "errno %d", errno_value);
  }
  return std::string(buf);
#endif
}

const char* GetEnv(const char* name) {
  // Safe per the contract in the header: no setenv/putenv after startup.
  return std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
}

}  // namespace vitri
