#include "common/os.h"

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vitri {

std::string ErrnoString(int errno_value) {
  char buf[256] = {};
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // GNU strerror_r returns a pointer that may or may not be buf.
  return std::string(strerror_r(errno_value, buf, sizeof(buf)));
#else
  // XSI strerror_r fills buf and returns 0 on success.
  if (strerror_r(errno_value, buf, sizeof(buf)) != 0) {
    std::snprintf(buf, sizeof(buf), "errno %d", errno_value);
  }
  return std::string(buf);
#endif
}

const char* GetEnv(const char* name) {
  // Safe per the contract in the header: no setenv/putenv after startup.
  return std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
}

Result<size_t> ReadFull(int fd, void* buf, size_t n) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, p + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("read: ") + ErrnoString(errno));
    }
    if (r == 0) break;  // EOF: the peer closed the stream.
    done += static_cast<size_t>(r);
  }
  return done;
}

Status WriteFull(int fd, const void* buf, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::write(fd, p + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("write: ") + ErrnoString(errno));
    }
    if (r == 0) return Status::IoError("write: wrote no bytes");
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

void IgnoreSigpipe() {
  // sigaction over signal() for a defined, portable disposition swap.
  struct sigaction sa = {};
  sa.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &sa, nullptr);
}

}  // namespace vitri
