#ifndef VITRI_COMMON_OS_H_
#define VITRI_COMMON_OS_H_

#include <cstddef>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace vitri {

/// Formats `errno_value` like strerror(3) but through strerror_r, so
/// error paths stay thread-safe (strerror shares one static buffer and
/// is flagged by clang-tidy's concurrency-mt-unsafe check).
std::string ErrnoString(int errno_value);

/// getenv(3) behind a single audited funnel. getenv itself is only
/// hazardous concurrently with setenv/putenv, which this codebase never
/// calls after startup; routing every lookup through here keeps that
/// justification in one place instead of a NOLINT per call site.
/// Returns nullptr when the variable is unset, like getenv.
const char* GetEnv(const char* name);

/// Full-transfer read(2)/write(2) loops for streaming descriptors
/// (sockets, pipes): retry EINTR, advance past short transfers, and
/// format failures through ErrnoString so error strings stay mt-safe.
/// These are the positionless siblings of storage/posix_io.h's
/// ReadFullyAt/WriteFullyAt (which serve pread/pwrite-backed pagers).
///
/// ReadFull returns the bytes transferred: exactly `n`, or fewer iff
/// the peer closed the stream first (0 = EOF before any byte — a clean
/// connection close, which framed protocols must distinguish from a
/// frame truncated mid-read).
Result<size_t> ReadFull(int fd, void* buf, size_t n);

/// Writes all `n` bytes or fails. A peer that disappeared mid-write
/// surfaces as IoError (EPIPE/ECONNRESET), not a signal — pair with
/// IgnoreSigpipe() in any process that writes to sockets.
Status WriteFull(int fd, const void* buf, size_t n);

/// Ignores SIGPIPE process-wide so a vanished peer turns socket writes
/// into EPIPE errors instead of killing the process. Idempotent; call
/// once at startup (the serving layer calls it from Server::Start).
void IgnoreSigpipe();

}  // namespace vitri

#endif  // VITRI_COMMON_OS_H_
