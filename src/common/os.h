#ifndef VITRI_COMMON_OS_H_
#define VITRI_COMMON_OS_H_

#include <string>

namespace vitri {

/// Formats `errno_value` like strerror(3) but through strerror_r, so
/// error paths stay thread-safe (strerror shares one static buffer and
/// is flagged by clang-tidy's concurrency-mt-unsafe check).
std::string ErrnoString(int errno_value);

/// getenv(3) behind a single audited funnel. getenv itself is only
/// hazardous concurrently with setenv/putenv, which this codebase never
/// calls after startup; routing every lookup through here keeps that
/// justification in one place instead of a NOLINT per call site.
/// Returns nullptr when the variable is unset, like getenv.
const char* GetEnv(const char* name);

}  // namespace vitri

#endif  // VITRI_COMMON_OS_H_
