#include "common/thread_pool.h"

#include <atomic>

#include "common/check.h"

namespace vitri {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t count = num_threads == 0 ? 1 : num_threads;
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  VITRI_CHECK(task != nullptr) << "Submit of an empty task";
  {
    MutexLock lock(mu_);
    VITRI_CHECK(!stop_) << "Submit on a shutting-down ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  // Per-call completion state lives on the caller's stack: the caller
  // blocks until `remaining` hits zero, so the references the worker
  // tasks capture stay valid for exactly as long as they are used.
  struct ForState {
    std::atomic<size_t> next{0};
    Mutex mu;
    CondVar done;
    size_t remaining VITRI_GUARDED_BY(mu) = 0;
  };
  ForState state;
  const size_t tasks = std::min(workers_.size(), n);
  {
    MutexLock lock(state.mu);
    state.remaining = tasks;
  }
  for (size_t t = 0; t < tasks; ++t) {
    Submit([&state, &body, n] {
      for (size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
           i < n;
           i = state.next.fetch_add(1, std::memory_order_relaxed)) {
        body(i);
      }
      MutexLock lock(state.mu);
      if (--state.remaining == 0) state.done.NotifyOne();
    });
  }
  MutexLock lock(state.mu);
  // Explicit wait loop (not the predicate overload): the thread-safety
  // analysis checks lambda bodies without the caller's lock set, so a
  // predicate reading `remaining` would flag a false positive.
  while (state.remaining != 0) state.done.Wait(lock);
}

size_t ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(lock);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace vitri
