#include "common/crc32c.h"

#include <array>

namespace vitri {
namespace {

// Slicing-by-4: four 256-entry tables; table[0] is the classic
// byte-at-a-time table, table[k] advances a byte that sits k positions
// earlier in the stream. Generated at compile time.
constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected.

constexpr std::array<std::array<uint32_t, 256>, 4> MakeTables() {
  std::array<std::array<uint32_t, 256>, 4> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (int k = 1; k < 4; ++k) {
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xffu];
    }
  }
  return t;
}

constexpr auto kTables = MakeTables();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t n) {
  uint32_t c = crc ^ 0xffffffffu;
  while (n >= 4) {
    c ^= static_cast<uint32_t>(data[0]) |
         (static_cast<uint32_t>(data[1]) << 8) |
         (static_cast<uint32_t>(data[2]) << 16) |
         (static_cast<uint32_t>(data[3]) << 24);
    c = kTables[3][c & 0xffu] ^ kTables[2][(c >> 8) & 0xffu] ^
        kTables[1][(c >> 16) & 0xffu] ^ kTables[0][c >> 24];
    data += 4;
    n -= 4;
  }
  while (n > 0) {
    c = (c >> 8) ^ kTables[0][(c ^ *data) & 0xffu];
    ++data;
    --n;
  }
  return c ^ 0xffffffffu;
}

}  // namespace vitri
