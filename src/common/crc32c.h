#ifndef VITRI_COMMON_CRC32C_H_
#define VITRI_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace vitri {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected). The same
/// checksum iSCSI, ext4 and LevelDB/RocksDB use for on-disk integrity;
/// chosen over CRC-32 for its better error-detection properties on
/// storage-sized blocks.

/// Extends `crc` (a previous return value of Crc32c/Crc32cExtend, or 0
/// for a fresh stream) with `n` more bytes. Streaming-composable:
/// Crc32cExtend(Crc32c(a, n), b, m) == Crc32c(concat(a, b), n + m).
uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t n);

/// One-shot checksum of a byte buffer.
inline uint32_t Crc32c(const uint8_t* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace vitri

#endif  // VITRI_COMMON_CRC32C_H_
