#ifndef VITRI_COMMON_RANDOM_H_
#define VITRI_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace vitri {

/// Deterministic, fast PRNG (xoshiro256**), seeded via SplitMix64.
/// Used everywhere instead of <random> engines so experiments are
/// bit-reproducible across standard library implementations.
class Rng {
 public:
  /// Seeds the generator; identical seeds give identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the scalar seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next 64 uniformly distributed bits.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformU64(uint64_t n) {
    // Lemire's nearly-divisionless bounded generation (biased tail is
    // rejected).
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (0 - n) % n;
      while (l < t) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform size_t index in [0, n).
  size_t Index(size_t n) { return static_cast<size_t>(UniformU64(n)); }

  /// Standard normal via Box-Muller (cached second deviate).
  double Gaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace vitri

#endif  // VITRI_COMMON_RANDOM_H_
