#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace vitri::json {

// ---- writer -------------------------------------------------------------

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  needs_comma_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  needs_comma_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  MaybeComma();
  out_ += '"';
  out_ += EscapeJson(key);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_ += '"';
  out_ += EscapeJson(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(value));
  out_ += buf;
}

void JsonWriter::Uint(uint64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out_ += buf;
}

void JsonWriter::RawValue(std::string_view json) {
  MaybeComma();
  out_ += json;
}

void JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- parser -------------------------------------------------------------

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    VITRI_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    JsonValue v;
    if (ConsumeWord("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.bool_value = true;
      return v;
    }
    if (ConsumeWord("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (ConsumeWord("null")) return v;
    return Error("unexpected character");
  }

  Result<JsonValue> ParseObject() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Consume('}')) return v;
    while (true) {
      SkipSpace();
      VITRI_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' in object");
      VITRI_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      v.object.emplace(std::move(key.string_value), std::move(value));
      SkipSpace();
      if (Consume('}')) return v;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Consume(']')) return v;
    while (true) {
      VITRI_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      v.array.push_back(std::move(element));
      SkipSpace();
      if (Consume(']')) return v;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    if (!Consume('"')) return Error("expected string");
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string_value += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string_value += '"'; break;
        case '\\': v.string_value += '\\'; break;
        case '/': v.string_value += '/'; break;
        case 'b': v.string_value += '\b'; break;
        case 'f': v.string_value += '\f'; break;
        case 'n': v.string_value += '\n'; break;
        case 'r': v.string_value += '\r'; break;
        case 't': v.string_value += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return Error("bad \\u escape digit");
          }
          // The writer only emits \u00xx for control bytes; decode the
          // Latin-1 range and reject the rest (no UTF-16 surrogates).
          if (code > 0xff) return Error("\\u escape beyond Latin-1");
          v.string_value += static_cast<char>(code);
          break;
        }
        default:
          return Error("unknown escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), v.number);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Error("malformed number");
    }
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace vitri::json
