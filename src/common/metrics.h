#ifndef VITRI_COMMON_METRICS_H_
#define VITRI_COMMON_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotated_lock.h"

namespace vitri::metrics {

/// Process-wide metrics registry (LevelDB/RocksDB-style tick counters
/// and latency histograms) backing `vitri stats` and the BENCH_*.json
/// artifacts.
///
/// Contract (DESIGN.md §12):
///   * Recording is lock-free: counters, gauges, and histogram buckets
///     are relaxed atomics, safe to hit from every BatchKnn worker
///     concurrently (tsan-clean) and cheap enough for buffer-pool hot
///     paths (one atomic add per event).
///   * Lookup is amortized free: instrumented sites cache the pointer
///     returned by GetCounter()/GetHistogram() in a function-local
///     static, so the registry mutex is only taken on the first event
///     per site and when snapshotting.
///   * Metrics are *observational*: nothing in the system reads them
///     back to make decisions, and they are entirely separate from the
///     IoStats / QueryCosts counters the paper's cost figures report —
///     instrumentation never perturbs QueryCosts.
///   * Snapshots are per-metric consistent (each value is one atomic
///     read), not globally consistent — the usual monitoring contract.

/// Monotonic event counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  /// Testing only; racing Reset with writers loses increments.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. resident pages).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram of non-negative integer samples (latencies in
/// microseconds, page counts, ...). Buckets follow the classic
/// 1-2-...-9 × powers-of-ten progression, so percentile extraction by
/// linear interpolation within a bucket is accurate to ~11% relative
/// error across twelve decades. Recording is two relaxed atomic adds
/// (bucket + sum); no locks, no allocation.
class Histogram {
 public:
  /// Upper bounds: 1..9, 10..90 by 10, ... up to 9e11, then +inf.
  static constexpr size_t kNumBuckets = 9 * 12 + 1;

  void Record(uint64_t value);

  /// Point-in-time copy of the bucket state (each field one relaxed
  /// load; concurrent recording may straddle buckets/sum).
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    uint64_t buckets[kNumBuckets] = {};

    double Mean() const;
    /// p in [0, 100]; linear interpolation within the owning bucket.
    double Percentile(double p) const;
  };
  Snapshot TakeSnapshot() const;

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  /// Convenience wrappers over TakeSnapshot().
  double Percentile(double p) const { return TakeSnapshot().Percentile(p); }
  double Mean() const { return TakeSnapshot().Mean(); }

  /// Testing only; racing Reset with writers loses samples.
  void Reset();

  /// Index of the bucket holding `value` (exposed for tests).
  static size_t BucketIndex(uint64_t value);
  /// Inclusive upper bound of bucket `i` (the last bucket is unbounded
  /// and reports the largest finite bound).
  static uint64_t BucketUpperBound(size_t i);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  /// Running min/max maintained with compare-exchange loops.
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

/// Name → metric map. Metrics are created on first use and live for the
/// process (pointers are stable), so instrumented sites can cache them.
class Registry {
 public:
  /// The process-wide registry.
  static Registry& Instance();

  /// Finds or creates. A name can hold only one metric kind; requesting
  /// it as another kind aborts (programming error).
  Counter* GetCounter(std::string_view name) VITRI_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name) VITRI_EXCLUDES(mu_);
  Histogram* GetHistogram(std::string_view name) VITRI_EXCLUDES(mu_);

  struct Entry {
    std::string name;
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };
  /// All registered metrics, sorted by name.
  std::vector<Entry> Entries() const VITRI_EXCLUDES(mu_);

  /// Human-readable dump, one metric per line, sorted by name.
  std::string ToText() const;
  /// JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, min, max, p50, p95, p99}}}.
  /// Parseable by json::ParseJson (round-trip tested).
  std::string ToJson() const;

  /// Zeroes every counter/gauge/histogram (testing only; instrumented
  /// sites keep their cached pointers, which stay valid).
  void ResetAllForTest();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  struct Slot {
    Entry::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Guards map_ only — never the metric values, which are atomics
  /// recorded lock-free.
  mutable Mutex mu_;
  std::map<std::string, Slot, std::less<>> map_ VITRI_GUARDED_BY(mu_);
};

/// Cached-lookup helpers for instrumentation sites:
///   VITRI_METRIC_COUNTER("storage.pool.fetch")->Increment();
/// The static local pins the registry lookup to the first execution.
#define VITRI_METRIC_COUNTER(name)                                       \
  ([]() -> ::vitri::metrics::Counter* {                                  \
    static ::vitri::metrics::Counter* const metric =                     \
        ::vitri::metrics::Registry::Instance().GetCounter(name);         \
    return metric;                                                       \
  }())

#define VITRI_METRIC_GAUGE(name)                                         \
  ([]() -> ::vitri::metrics::Gauge* {                                    \
    static ::vitri::metrics::Gauge* const metric =                       \
        ::vitri::metrics::Registry::Instance().GetGauge(name);           \
    return metric;                                                       \
  }())

#define VITRI_METRIC_HISTOGRAM(name)                                     \
  ([]() -> ::vitri::metrics::Histogram* {                                \
    static ::vitri::metrics::Histogram* const metric =                   \
        ::vitri::metrics::Registry::Instance().GetHistogram(name);       \
    return metric;                                                       \
  }())

}  // namespace vitri::metrics

#endif  // VITRI_COMMON_METRICS_H_
