#include "common/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/json.h"

namespace vitri::metrics {

// ---- histogram ----------------------------------------------------------

size_t Histogram::BucketIndex(uint64_t value) {
  // Bucket upper bounds follow d * 10^k for d in 1..9, k in 0..11, in
  // ascending order; the final bucket catches everything above 9e11.
  if (value <= 1) return 0;
  uint64_t power = 1;
  size_t decade = 0;
  while (decade + 1 < 12 && value > 9 * power) {
    power *= 10;
    ++decade;
  }
  if (value > 9 * power) return kNumBuckets - 1;
  // Smallest d with value <= d * power.
  const uint64_t d = (value + power - 1) / power;
  return decade * 9 + static_cast<size_t>(d) - 1;
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i >= kNumBuckets - 1) i = kNumBuckets - 2;  // Last finite bound.
  uint64_t power = 1;
  for (size_t decade = 0; decade < i / 9; ++decade) power *= 10;
  return (i % 9 + 1) * power;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  const uint64_t min = min_.load(std::memory_order_relaxed);
  s.min = min == UINT64_MAX ? 0 : min;
  s.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

double Histogram::Snapshot::Mean() const {
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(count);
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the requested percentile within the recorded samples.
  const double target = p / 100.0 * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within [lower, upper] by the sample's position in
      // this bucket, then clamp to the observed extremes so a
      // single-bucket distribution reports exact values.
      const double upper = static_cast<double>(BucketUpperBound(i));
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(BucketUpperBound(i - 1));
      const double into =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      double value = lower + (upper - lower) * into;
      value = std::min(value, static_cast<double>(max));
      value = std::max(value, static_cast<double>(min));
      return value;
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---- registry -----------------------------------------------------------

Registry& Registry::Instance() {
  static Registry* const registry = new Registry();  // Never destroyed.
  return *registry;
}

Counter* Registry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = map_.find(name);
  if (it == map_.end()) {
    Slot slot;
    slot.kind = Entry::Kind::kCounter;
    slot.counter = std::make_unique<Counter>();
    it = map_.emplace(std::string(name), std::move(slot)).first;
  }
  VITRI_CHECK(it->second.kind == Entry::Kind::kCounter)
      << "metric '" << it->first << "' is not a counter";
  return it->second.counter.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = map_.find(name);
  if (it == map_.end()) {
    Slot slot;
    slot.kind = Entry::Kind::kGauge;
    slot.gauge = std::make_unique<Gauge>();
    it = map_.emplace(std::string(name), std::move(slot)).first;
  }
  VITRI_CHECK(it->second.kind == Entry::Kind::kGauge)
      << "metric '" << it->first << "' is not a gauge";
  return it->second.gauge.get();
}

Histogram* Registry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = map_.find(name);
  if (it == map_.end()) {
    Slot slot;
    slot.kind = Entry::Kind::kHistogram;
    slot.histogram = std::make_unique<Histogram>();
    it = map_.emplace(std::string(name), std::move(slot)).first;
  }
  VITRI_CHECK(it->second.kind == Entry::Kind::kHistogram)
      << "metric '" << it->first << "' is not a histogram";
  return it->second.histogram.get();
}

std::vector<Registry::Entry> Registry::Entries() const {
  MutexLock lock(mu_);
  std::vector<Entry> out;
  out.reserve(map_.size());
  for (const auto& [name, slot] : map_) {
    Entry e;
    e.name = name;
    e.kind = slot.kind;
    e.counter = slot.counter.get();
    e.gauge = slot.gauge.get();
    e.histogram = slot.histogram.get();
    out.push_back(e);
  }
  return out;  // std::map iteration is already name-sorted.
}

std::string Registry::ToText() const {
  std::ostringstream os;
  for (const Entry& e : Entries()) {
    switch (e.kind) {
      case Entry::Kind::kCounter:
        os << e.name << " " << e.counter->Value() << "\n";
        break;
      case Entry::Kind::kGauge:
        os << e.name << " " << e.gauge->Value() << "\n";
        break;
      case Entry::Kind::kHistogram: {
        const Histogram::Snapshot s = e.histogram->TakeSnapshot();
        os << e.name << " count=" << s.count << " mean=" << s.Mean()
           << " min=" << s.min << " max=" << s.max
           << " p50=" << s.Percentile(50) << " p95=" << s.Percentile(95)
           << " p99=" << s.Percentile(99) << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string Registry::ToJson() const {
  json::JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const Entry& e : Entries()) {
    if (e.kind != Entry::Kind::kCounter) continue;
    w.Key(e.name);
    w.Uint(e.counter->Value());
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const Entry& e : Entries()) {
    if (e.kind != Entry::Kind::kGauge) continue;
    w.Key(e.name);
    w.Int(e.gauge->Value());
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const Entry& e : Entries()) {
    if (e.kind != Entry::Kind::kHistogram) continue;
    const Histogram::Snapshot s = e.histogram->TakeSnapshot();
    w.Key(e.name);
    w.BeginObject();
    w.Key("count");
    w.Uint(s.count);
    w.Key("sum");
    w.Uint(s.sum);
    w.Key("mean");
    w.Double(s.Mean());
    w.Key("min");
    w.Uint(s.min);
    w.Key("max");
    w.Uint(s.max);
    w.Key("p50");
    w.Double(s.Percentile(50));
    w.Key("p95");
    w.Double(s.Percentile(95));
    w.Key("p99");
    w.Double(s.Percentile(99));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

void Registry::ResetAllForTest() {
  for (const Entry& e : Entries()) {
    switch (e.kind) {
      case Entry::Kind::kCounter: e.counter->Reset(); break;
      case Entry::Kind::kGauge: e.gauge->Set(0); break;
      case Entry::Kind::kHistogram: e.histogram->Reset(); break;
    }
  }
}

}  // namespace vitri::metrics
