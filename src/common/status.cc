#include "common/status.h"

namespace vitri {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace vitri
