#ifndef VITRI_COMMON_RESULT_H_
#define VITRI_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace vitri {

/// A value-or-error holder: either an OK Status plus a T, or a non-OK
/// Status and no value. Accessing the value of an error Result aborts
/// in debug builds (assert) — callers must check ok() first.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: makes `return value;` work in functions
  /// returning Result<T>.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit from error status. Constructing from an OK status without a
  /// value is a programming error.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // The NOLINTs below: bugprone-unchecked-optional-access cannot see
  // the class invariant that value_ is engaged iff status_ is OK (the
  // constructors enforce it), so every guarded deref would be flagged.
  const T& value() const& {
    assert(ok());
    return *value_;  // NOLINT(bugprone-unchecked-optional-access)
  }
  T& value() & {
    assert(ok());
    return *value_;  // NOLINT(bugprone-unchecked-optional-access)
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);  // NOLINT(bugprone-unchecked-optional-access)
  }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const& {
    // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status,
/// otherwise moves the value into `lhs`.
#define VITRI_ASSIGN_OR_RETURN(lhs, rexpr)                   \
  VITRI_ASSIGN_OR_RETURN_IMPL_(                              \
      VITRI_RESULT_CONCAT_(_vitri_result, __LINE__), lhs, rexpr)

#define VITRI_RESULT_CONCAT_INNER_(a, b) a##b
#define VITRI_RESULT_CONCAT_(a, b) VITRI_RESULT_CONCAT_INNER_(a, b)
#define VITRI_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace vitri

#endif  // VITRI_COMMON_RESULT_H_
