// Annotated lock wrappers for Clang thread-safety analysis (TSA).
//
// These are thin, zero-overhead shims over the standard <mutex> /
// <shared_mutex> primitives that carry Clang capability attributes, so
// `-Wthread-safety -Wthread-safety-beta` can prove at compile time that
// every access to a guarded member happens under the right latch and
// that every `*Locked()` helper is only reachable with its capability
// held. Under non-Clang compilers every attribute expands to nothing
// and the wrappers behave exactly like the standard types they wrap.
//
// Usage pattern (see DESIGN.md §14 for the repo-wide lock catalog):
//
//   class Table {
//    public:
//     void Put(int k, int v) {
//       MutexLock lock(mu_);
//       PutLocked(k, v);
//     }
//    private:
//     void PutLocked(int k, int v) VITRI_REQUIRES(mu_);
//     Mutex mu_;
//     std::map<int, int> map_ VITRI_GUARDED_BY(mu_);
//   };
//
// The `-Wthread-safety` gate is promoted to an error in the `clang-tsa`
// CI leg (see .github/workflows/ci.yml); tests/common/ carries a
// negative-compile test proving the analysis rejects seeded violations.

#ifndef VITRI_COMMON_ANNOTATED_LOCK_H_
#define VITRI_COMMON_ANNOTATED_LOCK_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Attribute macros. Kept in one place so every subsystem annotates with the
// same vocabulary; all of them compile away outside Clang.
// ---------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define VITRI_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VITRI_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// Declares a type to be a capability (a lock).
#define VITRI_CAPABILITY(x) VITRI_THREAD_ANNOTATION(capability(x))

// Declares an RAII type whose lifetime equals a capability's hold.
#define VITRI_SCOPED_CAPABILITY VITRI_THREAD_ANNOTATION(scoped_lockable)

// Data members protected by a capability.
#define VITRI_GUARDED_BY(x) VITRI_THREAD_ANNOTATION(guarded_by(x))

// Pointer members whose *pointee* is protected by a capability (the
// pointer itself may be read freely, e.g. to compare for null).
#define VITRI_PT_GUARDED_BY(x) VITRI_THREAD_ANNOTATION(pt_guarded_by(x))

// Static lock-ordering declarations.
#define VITRI_ACQUIRED_BEFORE(...) \
  VITRI_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define VITRI_ACQUIRED_AFTER(...) \
  VITRI_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Functions callable only with the capability held (exclusive / shared).
#define VITRI_REQUIRES(...) \
  VITRI_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define VITRI_REQUIRES_SHARED(...) \
  VITRI_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Functions that acquire / release a capability.
#define VITRI_ACQUIRE(...) \
  VITRI_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VITRI_ACQUIRE_SHARED(...) \
  VITRI_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define VITRI_RELEASE(...) \
  VITRI_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define VITRI_RELEASE_SHARED(...) \
  VITRI_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define VITRI_RELEASE_GENERIC(...) \
  VITRI_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

// Try-lock functions: first argument is the value returned on success.
#define VITRI_TRY_ACQUIRE(...) \
  VITRI_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define VITRI_TRY_ACQUIRE_SHARED(...) \
  VITRI_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// Functions that must NOT be called with the capability held.
#define VITRI_EXCLUDES(...) VITRI_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Asserts (to the analysis, with no runtime effect) that the calling
// thread already holds the capability. Used where a hold is established
// by a caller on a *different* stack — e.g. BatchKnn's orchestrator
// holds the shared index latch for its worker tasks.
#define VITRI_ASSERT_CAPABILITY(x) \
  VITRI_THREAD_ANNOTATION(assert_capability(x))
#define VITRI_ASSERT_SHARED_CAPABILITY(x) \
  VITRI_THREAD_ANNOTATION(assert_shared_capability(x))

// Functions returning a reference to a capability.
#define VITRI_RETURN_CAPABILITY(x) VITRI_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch. Budgeted: ≤3 uses repo-wide, each with a one-line
// justification comment (enforced by review; see DESIGN.md §14).
#define VITRI_NO_THREAD_SAFETY_ANALYSIS \
  VITRI_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vitri {

class CondVar;

// ---------------------------------------------------------------------------
// Mutex: std::mutex carrying the "mutex" capability.
// ---------------------------------------------------------------------------
class VITRI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() VITRI_ACQUIRE() { mu_.lock(); }
  void Unlock() VITRI_RELEASE() { mu_.unlock(); }
  bool TryLock() VITRI_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Tells the analysis the lock is held without acquiring it. No runtime
  // effect; use only where the hold is structurally guaranteed.
  void AssertHeld() const VITRI_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

// ---------------------------------------------------------------------------
// SharedMutex: std::shared_mutex carrying the "shared_mutex" capability.
// ---------------------------------------------------------------------------
class VITRI_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() VITRI_ACQUIRE() { mu_.lock(); }
  void Unlock() VITRI_RELEASE() { mu_.unlock(); }
  bool TryLock() VITRI_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() VITRI_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() VITRI_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() VITRI_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  void AssertHeld() const VITRI_ASSERT_CAPABILITY(this) {}
  void AssertHeldShared() const VITRI_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

// ---------------------------------------------------------------------------
// MutexLock: scoped exclusive hold of a Mutex. Wraps std::unique_lock so
// CondVar can wait on it; from the analysis's point of view the mutex is
// held for the whole scope (CondVar::Wait reacquires before returning).
// ---------------------------------------------------------------------------
class VITRI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VITRI_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() VITRI_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// ---------------------------------------------------------------------------
// WriterLock / ReaderLock: scoped exclusive / shared holds of a SharedMutex.
// ---------------------------------------------------------------------------
class VITRI_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) VITRI_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() VITRI_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

class VITRI_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) VITRI_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() VITRI_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// ---------------------------------------------------------------------------
// CondVar: std::condition_variable bound to MutexLock. Wait() atomically
// releases and reacquires the underlying mutex; since the capability is
// held again on return, the analysis treats the hold as continuous —
// which is exactly the guarantee callers rely on for guarded state, as
// long as predicates are re-checked in a loop (spurious wakeups).
// ---------------------------------------------------------------------------
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  /// Timed wait; returns false on timeout. Same re-check-in-a-loop
  /// contract as Wait() — a true return only means "woken", not
  /// "predicate holds".
  bool WaitFor(MutexLock& lock, std::chrono::milliseconds timeout) {
    return cv_.wait_for(lock.lock_, timeout) == std::cv_status::no_timeout;
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace vitri

#endif  // VITRI_COMMON_ANNOTATED_LOCK_H_
