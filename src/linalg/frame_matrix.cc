#include "linalg/frame_matrix.h"

#include <algorithm>

namespace vitri::linalg {

FrameMatrix FrameMatrix::FromRows(const std::vector<Vec>& rows) {
  FrameMatrix m;
  if (rows.empty()) return m;
  m.dim_ = rows[0].size();
  assert(m.dim_ > 0);
  m.data_.reserve(rows.size() * m.dim_);
  for (const Vec& r : rows) {
    assert(r.size() == m.dim_);
    m.data_.insert(m.data_.end(), r.begin(), r.end());
  }
  return m;
}

FrameMatrix FrameMatrix::Gather(const std::vector<Vec>& points,
                                const std::vector<uint32_t>& indices) {
  FrameMatrix m;
  if (indices.empty()) return m;
  m.dim_ = points[indices[0]].size();
  assert(m.dim_ > 0);
  m.data_.reserve(indices.size() * m.dim_);
  for (uint32_t idx : indices) {
    assert(idx < points.size());
    const Vec& p = points[idx];
    assert(p.size() == m.dim_);
    m.data_.insert(m.data_.end(), p.begin(), p.end());
  }
  return m;
}

void FrameMatrix::SetRow(size_t i, VecView row) {
  assert(row.size() == dim_);
  std::copy(row.begin(), row.end(), MutableRow(i).begin());
}

void FrameMatrix::AppendRow(VecView row) {
  assert(!row.empty());
  if (dim_ == 0) {
    dim_ = row.size();
  }
  assert(row.size() == dim_);
  data_.insert(data_.end(), row.begin(), row.end());
}

}  // namespace vitri::linalg
