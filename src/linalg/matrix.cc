#include "linalg/matrix.h"

namespace vitri::linalg {

Matrix Covariance(const std::vector<Vec>& points) {
  if (points.empty()) return Matrix();
  const size_t n = points[0].size();
  const Vec mean = Mean(points);
  Matrix cov(n, n);
  for (const Vec& p : points) {
    for (size_t i = 0; i < n; ++i) {
      const double di = p[i] - mean[i];
      for (size_t j = i; j < n; ++j) {
        cov(i, j) += di * (p[j] - mean[j]);
      }
    }
  }
  const double inv_n = 1.0 / static_cast<double>(points.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      cov(i, j) *= inv_n;
      cov(j, i) = cov(i, j);
    }
  }
  return cov;
}

}  // namespace vitri::linalg
