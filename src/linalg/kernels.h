#ifndef VITRI_LINALG_KERNELS_H_
#define VITRI_LINALG_KERNELS_H_

#include <cstddef>
#include <span>

#include "linalg/frame_matrix.h"
#include "linalg/vec.h"

namespace vitri::linalg {

/// Runtime-dispatched distance kernels.
///
/// Every hot path in the system — 2-means bisection during ViTri
/// summarization, ViTri similarity, ground-truth frame matching, KNN
/// refinement — bottoms out in a Euclidean distance over doubles. This
/// layer provides one audited implementation per instruction set and
/// selects a backend *once per process*:
///
///   * kAvx2   — 256-bit FMA kernels (requires AVX2 + FMA),
///   * kSse2   — 128-bit kernels (baseline on x86-64),
///   * kScalar — portable loop, bit-identical to the original naive
///               implementation (the determinism anchor).
///
/// Selection happens at first use via CPUID, picking the widest
/// available backend. `VITRI_DISABLE_SIMD=1` in the environment or a
/// `DisableSimd()` call at startup (the CLI's `--no-simd`) pins the
/// scalar backend. The backend is fixed for the life of the process, so
/// all floating-point results — and therefore query answers, snapshots,
/// and the BatchKnn determinism contract of DESIGN.md §10 — are
/// reproducible for a given backend. Different backends may differ in
/// the last ULPs (FMA and lane-wise summation reassociate the
/// reduction); see DESIGN.md §11 for the exact contract.

enum class KernelBackend {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Raw kernel entry points for one backend. `n` is the element count;
/// pointers may be null when n == 0. All kernels tolerate unaligned
/// input (frames live in std::vector<double> buffers).
struct KernelOps {
  double (*dot)(const double* a, const double* b, size_t n);
  double (*squared_distance)(const double* a, const double* b, size_t n);
  /// Early-abandoning squared distance: accumulates the (monotone)
  /// partial sum of squared differences and returns as soon as it
  /// exceeds `threshold`. Guarantees:
  ///   * if the return value is <= threshold, it is *exactly* the value
  ///     squared_distance() would return (same summation order);
  ///   * if it aborted early, the returned partial sum is > threshold,
  ///     and the full sum is >= the returned value — so comparisons
  ///     against `threshold` are exact, never a false abandon.
  double (*squared_distance_bounded)(const double* a, const double* b,
                                     size_t n, double threshold);
  /// One-to-many: out[r] = squared_distance(q, rows + r*dim, dim) for
  /// r in [0, num_rows). `rows` is a contiguous row-major block (a
  /// FrameMatrix). SIMD backends interleave several rows per pass to
  /// reuse query loads and hide reduction latency, but each row's
  /// accumulation order matches the per-pair kernel, so out[r] is
  /// bit-identical to calling squared_distance on that row.
  void (*squared_distance_batch)(const double* q, const double* rows,
                                 size_t num_rows, size_t dim, double* out);
};

/// Human-readable backend name ("scalar", "sse2", "avx2").
const char* KernelBackendName(KernelBackend backend);

/// Whether this build/CPU can run `backend`.
bool KernelBackendAvailable(KernelBackend backend);

/// Kernel table for an explicitly chosen backend (tests and benches
/// compare backends this way without touching process-global dispatch).
/// The backend must be available.
const KernelOps& KernelOpsFor(KernelBackend backend);

/// The process-wide backend: widest available, unless SIMD is disabled.
KernelBackend ActiveKernelBackend();

/// Kernel table for the process-wide backend.
const KernelOps& ActiveKernelOps();

/// Pins the scalar backend for the rest of the process. Call at startup
/// (before any queries) — dispatch is fixed per process, and flipping
/// it mid-run would mix summation orders across results.
void DisableSimd();

/// Backend-selection policy, exposed for tests: what the process would
/// pick given the CPU and the `disable_simd` override.
KernelBackend ResolveKernelBackend(bool disable_simd);

/// True when VITRI_DISABLE_SIMD is set to a truthy value ("1", or any
/// non-empty string other than "0").
bool SimdDisabledByEnv();

/// Early-abandoning squared distance over the active backend; see
/// KernelOps::squared_distance_bounded for the exactness contract.
/// Use for membership tests (d^2 <= eps^2) and running-minimum loops —
/// never take a sqrt just to compare.
double SquaredDistanceBounded(VecView a, VecView b, double threshold);

/// One-to-many kernel: out[i] = SquaredDistance(query, frames.Row(i)).
/// Row i's value is bit-identical to the per-pair kernel on the same
/// backend. Requires out.size() == frames.num_rows() and
/// query.size() == frames.dim().
void SquaredDistanceBatch(VecView query, const FrameMatrix& frames,
                          std::span<double> out);
void SquaredDistanceBatch(const KernelOps& ops, VecView query,
                          const FrameMatrix& frames, std::span<double> out);

/// Index and squared distance of the row nearest to `query`. Ties keep
/// the lowest index. With `early_abandon` (the default) each row's scan
/// aborts once it cannot beat the running best; the result — index and
/// distance bits — is identical either way (see the bounded-kernel
/// contract above). Requires rows.num_rows() > 0.
struct ArgMinResult {
  size_t index = 0;
  double squared_distance = 0.0;
};
ArgMinResult ArgMinSquaredDistance(VecView query, const FrameMatrix& rows,
                                   bool early_abandon = true);
ArgMinResult ArgMinSquaredDistance(const KernelOps& ops, VecView query,
                                   const FrameMatrix& rows,
                                   bool early_abandon);

}  // namespace vitri::linalg

#endif  // VITRI_LINALG_KERNELS_H_
