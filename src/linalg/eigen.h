#ifndef VITRI_LINALG_EIGEN_H_
#define VITRI_LINALG_EIGEN_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace vitri::linalg {

/// Eigendecomposition of a real symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues sorted in descending order.
  Vec eigenvalues;
  /// eigenvectors.Row(i) is the unit eigenvector for eigenvalues[i].
  Matrix eigenvectors;
};

/// Cyclic Jacobi rotation eigensolver for a symmetric matrix. Suitable
/// for the covariance matrices of this library (dimension <= a few
/// hundred). Fails with InvalidArgument for non-square/asymmetric input
/// and Internal if convergence is not reached.
Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                int max_sweeps = 64);

}  // namespace vitri::linalg

#endif  // VITRI_LINALG_EIGEN_H_
