#ifndef VITRI_LINALG_MATRIX_H_
#define VITRI_LINALG_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "linalg/vec.h"

namespace vitri::linalg {

/// Dense row-major matrix of doubles, sized at construction.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  /// Identity matrix of size n x n.
  static Matrix Identity(size_t n) {
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// View of row r.
  VecView Row(size_t r) const {
    assert(r < rows_);
    return VecView(data_.data() + r * cols_, cols_);
  }

  /// Copies column c into a new vector.
  Vec Col(size_t c) const {
    assert(c < cols_);
    Vec out(rows_);
    for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
    return out;
  }

  /// Matrix-vector product (this * v). Requires v.size() == cols().
  Vec Multiply(VecView v) const {
    assert(v.size() == cols_);
    Vec out(rows_, 0.0);
    for (size_t r = 0; r < rows_; ++r) {
      out[r] = Dot(Row(r), v);
    }
    return out;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Sample covariance matrix of `points` (rows = observations). Uses the
/// 1/N normalization (population covariance) to match the paper's sigma
/// definition. Empty input returns an empty matrix.
Matrix Covariance(const std::vector<Vec>& points);

}  // namespace vitri::linalg

#endif  // VITRI_LINALG_MATRIX_H_
