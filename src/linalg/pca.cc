#include "linalg/pca.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vitri::linalg {

Result<Pca> Pca::Fit(const std::vector<Vec>& points) {
  if (points.empty()) {
    return Status::InvalidArgument("PCA requires at least one point");
  }
  const size_t dim = points[0].size();
  if (dim == 0) {
    return Status::InvalidArgument("PCA requires non-empty vectors");
  }
  for (const Vec& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("PCA points must share one dimension");
    }
  }

  Pca pca;
  pca.mean_ = Mean(points);
  const Matrix cov = Covariance(points);
  VITRI_ASSIGN_OR_RETURN(pca.decomposition_, JacobiEigenSymmetric(cov));

  pca.segments_.resize(dim);
  for (size_t c = 0; c < dim; ++c) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const Vec& p : points) {
      const double t = Dot(p, pca.Component(c));
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    pca.segments_[c] = VarianceSegment{lo, hi};
  }
  return pca;
}

double Pca::Project(VecView point, size_t i) const {
  return Dot(point, Component(i));
}

double Pca::FirstComponentAngle(const Pca& other) const {
  const double cosine =
      std::clamp(std::fabs(Dot(Component(0), other.Component(0))), 0.0, 1.0);
  return std::acos(cosine);
}

}  // namespace vitri::linalg
