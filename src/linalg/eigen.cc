#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace vitri::linalg {

Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                int max_sweeps) {
  const size_t n = a.rows();
  if (n == 0 || a.cols() != n) {
    return Status::InvalidArgument("matrix must be square and non-empty");
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double scale =
          std::max({std::fabs(a(i, j)), std::fabs(a(j, i)), 1.0});
      if (std::fabs(a(i, j) - a(j, i)) > 1e-9 * scale) {
        return Status::InvalidArgument("matrix must be symmetric");
      }
    }
  }

  Matrix work = a;
  Matrix v = Matrix::Identity(n);

  auto off_diagonal_norm = [&]() {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) sum += work(i, j) * work(i, j);
    }
    return std::sqrt(sum);
  };

  const double initial_norm = off_diagonal_norm();
  const double tol = 1e-14 * std::max(initial_norm, 1.0);

  bool converged = initial_norm <= tol;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = work(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = work(p, p);
        const double aqq = work(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Choose the smaller-magnitude tangent for stability.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation to rows/columns p and q of `work`.
        for (size_t k = 0; k < n; ++k) {
          const double akp = work(k, p);
          const double akq = work(k, q);
          work(k, p) = c * akp - s * akq;
          work(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = work(p, k);
          const double aqk = work(q, k);
          work(p, k) = c * apk - s * aqk;
          work(q, k) = s * apk + c * aqk;
        }
        // Accumulate the eigenvector rotation (columns of v).
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    converged = off_diagonal_norm() <= tol;
  }
  if (!converged) {
    return Status::Internal("Jacobi eigensolver did not converge");
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t i, size_t j) {
    return work(i, i) > work(j, j);
  });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (size_t r = 0; r < n; ++r) {
    const size_t src = order[r];
    out.eigenvalues[r] = work(src, src);
    for (size_t k = 0; k < n; ++k) {
      out.eigenvectors(r, k) = v(k, src);
    }
  }
  return out;
}

}  // namespace vitri::linalg
