#ifndef VITRI_LINALG_PCA_H_
#define VITRI_LINALG_PCA_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/vec.h"

namespace vitri::linalg {

/// A segment [lo, hi] of scalar projections onto one principal component
/// — Definition 1 of the paper. All data points project inside it.
struct VarianceSegment {
  double lo = 0.0;
  double hi = 0.0;

  double length() const { return hi - lo; }
  bool Contains(double t) const { return t >= lo && t <= hi; }
};

/// Principal Component Analysis over a point set, exposing exactly what
/// the paper's one-dimensional transformation needs: the data center, the
/// ordered principal components, and per-component variance segments.
class Pca {
 public:
  /// Fits PCA to `points` (all the same dimension, at least one point).
  static Result<Pca> Fit(const std::vector<Vec>& points);

  /// Dimensionality of the fitted space.
  size_t dimension() const { return mean_.size(); }

  /// Number of principal components (== dimension).
  size_t num_components() const { return decomposition_.eigenvalues.size(); }

  /// The data center (mean of the fitted points).
  const Vec& mean() const { return mean_; }

  /// Unit direction of component i (descending variance order).
  VecView Component(size_t i) const {
    return decomposition_.eigenvectors.Row(i);
  }

  /// Variance (eigenvalue) along component i.
  double Variance(size_t i) const { return decomposition_.eigenvalues[i]; }

  /// Scalar projection of `point` onto component i, measured from the
  /// coordinate origin (O . Phi_i, as in the paper's Figure 2).
  double Project(VecView point, size_t i) const;

  /// The variance segment of component i over the fitted points.
  const VarianceSegment& Segment(size_t i) const { return segments_[i]; }

  /// Angle in radians between this fit's first component and `other`'s
  /// first component (in [0, pi/2]; principal directions are sign-free).
  /// Used by the index's drift-triggered rebuild policy (Section 6.3.3).
  double FirstComponentAngle(const Pca& other) const;

 private:
  Pca() = default;

  Vec mean_;
  EigenDecomposition decomposition_;
  std::vector<VarianceSegment> segments_;
};

}  // namespace vitri::linalg

#endif  // VITRI_LINALG_PCA_H_
