#include "linalg/vec.h"

#include <cassert>
#include <cmath>

#include "linalg/kernels.h"

namespace vitri::linalg {

// Dot / Norm / SquaredDistance / Distance dispatch to the per-process
// kernel backend (linalg/kernels.h). The scalar backend reproduces the
// original naive loops bit-for-bit, so with SIMD disabled every caller
// sees exactly the pre-kernel-layer results.

double Dot(VecView a, VecView b) {
  assert(a.size() == b.size());
  return ActiveKernelOps().dot(a.data(), b.data(), a.size());
}

double Norm(VecView a) { return std::sqrt(Dot(a, a)); }

double SquaredDistance(VecView a, VecView b) {
  assert(a.size() == b.size());
  return ActiveKernelOps().squared_distance(a.data(), b.data(), a.size());
}

double Distance(VecView a, VecView b) {
  return std::sqrt(SquaredDistance(a, b));
}

void AddInPlace(Vec& a, VecView b) {
  assert(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void SubInPlace(Vec& a, VecView b) {
  assert(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] -= b[i];
}

void ScaleInPlace(Vec& a, double s) {
  for (double& x : a) x *= s;
}

Vec Axpy(VecView a, double s, VecView b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

Vec Mean(const std::vector<Vec>& points) {
  if (points.empty()) return {};
  Vec mean(points[0].size(), 0.0);
  for (const Vec& p : points) AddInPlace(mean, p);
  ScaleInPlace(mean, 1.0 / static_cast<double>(points.size()));
  return mean;
}

}  // namespace vitri::linalg
