#ifndef VITRI_LINALG_FRAME_MATRIX_H_
#define VITRI_LINALG_FRAME_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/vec.h"

namespace vitri::linalg {

/// Contiguous row-major matrix of feature vectors. The library's hot
/// loops (k-means assignment, ground-truth frame matching, KNN
/// refinement) are one-to-many distance computations; scattering each
/// point in its own std::vector<double> costs a pointer chase and a
/// cache miss per pair. FrameMatrix stores all rows back to back in one
/// flat buffer so the kernel layer (linalg/kernels.h) can stream them.
///
/// Rows hold exactly the same bit patterns as the vectors they were
/// copied from, so per-pair kernel results over a FrameMatrix row are
/// identical to results over the source Vec.
class FrameMatrix {
 public:
  FrameMatrix() = default;

  /// num_rows x dim, zero-filled.
  FrameMatrix(size_t num_rows, size_t dim)
      : data_(num_rows * dim, 0.0), dim_(dim) {
    assert(dim > 0);
  }

  /// Copies `rows` (all the same dimension) into contiguous storage.
  static FrameMatrix FromRows(const std::vector<Vec>& rows);

  /// Copies points[indices[0]], points[indices[1]], ... into contiguous
  /// storage: row i of the result is points[indices[i]]. The gather the
  /// recursive bisecting clusterer uses to densify its working subset.
  static FrameMatrix Gather(const std::vector<Vec>& points,
                            const std::vector<uint32_t>& indices);

  size_t num_rows() const { return dim_ == 0 ? 0 : data_.size() / dim_; }
  size_t dim() const { return dim_; }
  bool empty() const { return data_.empty(); }

  VecView Row(size_t i) const {
    assert(i < num_rows());
    return VecView(data_.data() + i * dim_, dim_);
  }

  std::span<double> MutableRow(size_t i) {
    assert(i < num_rows());
    return std::span<double>(data_.data() + i * dim_, dim_);
  }

  /// Overwrites row i. `row` must match dim().
  void SetRow(size_t i, VecView row);

  /// Appends a row; the first append fixes dim().
  void AppendRow(VecView row);

  /// Copies row i out into an owned Vec.
  Vec RowVec(size_t i) const {
    const VecView r = Row(i);
    return Vec(r.begin(), r.end());
  }

  /// Flat row-major storage: row i spans [data() + i*dim, +dim).
  const double* data() const { return data_.data(); }

 private:
  std::vector<double> data_;
  size_t dim_ = 0;
};

}  // namespace vitri::linalg

#endif  // VITRI_LINALG_FRAME_MATRIX_H_
