#include "linalg/kernels.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/os.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define VITRI_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace vitri::linalg {
namespace {

// ---------------------------------------------------------------------
// Scalar backend. These loops are byte-for-byte the original naive
// implementations from linalg/vec.cc: strictly sequential accumulation,
// no FMA contraction relied upon. The `simd-off` CI leg pins query
// results to this backend, so its summation order must never change.
// ---------------------------------------------------------------------

double DotScalar(const double* a, const double* b, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double SquaredDistanceScalar(const double* a, const double* b, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

double SquaredDistanceBoundedScalar(const double* a, const double* b,
                                    size_t n, double threshold) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
    if (sum > threshold) return sum;
  }
  return sum;
}

void SquaredDistanceBatchScalar(const double* q, const double* rows,
                                size_t num_rows, size_t dim, double* out) {
  for (size_t r = 0; r < num_rows; ++r) {
    out[r] = SquaredDistanceScalar(q, rows + r * dim, dim);
  }
}

constexpr KernelOps kScalarOps = {
    &DotScalar,
    &SquaredDistanceScalar,
    &SquaredDistanceBoundedScalar,
    &SquaredDistanceBatchScalar,
};

#if VITRI_KERNELS_X86

// ---------------------------------------------------------------------
// SSE2 backend (baseline on x86-64). Two 128-bit accumulators hide the
// add latency; element pairs (i, i+1) feed acc0 and (i+2, i+3) feed
// acc1. The bounded variant uses the *same* accumulator assignment so
// a non-abandoned result is bit-identical to the unbounded kernel.
// ---------------------------------------------------------------------

inline double HSum128(__m128d v) {
  const __m128d hi = _mm_unpackhi_pd(v, v);
  return _mm_cvtsd_f64(_mm_add_sd(v, hi));
}

double DotSse2(const double* a, const double* b, size_t n) {
  __m128d acc0 = _mm_setzero_pd();
  __m128d acc1 = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm_add_pd(
        acc0, _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
    acc1 = _mm_add_pd(
        acc1, _mm_mul_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2)));
  }
  double sum = HSum128(_mm_add_pd(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double SquaredDistanceSse2(const double* a, const double* b, size_t n) {
  __m128d acc0 = _mm_setzero_pd();
  __m128d acc1 = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d d0 =
        _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    const __m128d d1 =
        _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
    acc0 = _mm_add_pd(acc0, _mm_mul_pd(d0, d0));
    acc1 = _mm_add_pd(acc1, _mm_mul_pd(d1, d1));
  }
  double sum = HSum128(_mm_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

double SquaredDistanceBoundedSse2(const double* a, const double* b,
                                  size_t n, double threshold) {
  // Partial sums of squares are monotone under floating-point addition
  // of non-negative terms, so checking the reduced prefix every 16
  // elements gives exact abandonment at ~3% reduction overhead.
  constexpr size_t kCheckStride = 16;
  __m128d acc0 = _mm_setzero_pd();
  __m128d acc1 = _mm_setzero_pd();
  size_t i = 0;
  size_t next_check = kCheckStride;
  for (; i + 4 <= n; i += 4) {
    const __m128d d0 =
        _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    const __m128d d1 =
        _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
    acc0 = _mm_add_pd(acc0, _mm_mul_pd(d0, d0));
    acc1 = _mm_add_pd(acc1, _mm_mul_pd(d1, d1));
    if (i + 4 >= next_check) {
      const double partial = HSum128(_mm_add_pd(acc0, acc1));
      if (partial > threshold) return partial;
      next_check += kCheckStride;
    }
  }
  double sum = HSum128(_mm_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
    if (sum > threshold) return sum;
  }
  return sum;
}

// One-to-many: two rows per pass share the query loads and run two
// independent accumulator chains, hiding the horizontal-reduction
// latency that dominates short per-row kernels. Each row's elements
// feed acc0/acc1 in exactly the per-pair order, so out[r] stays
// bit-identical to SquaredDistanceSse2 on that row.
void SquaredDistanceBatchSse2(const double* q, const double* rows,
                              size_t num_rows, size_t dim, double* out) {
  size_t r = 0;
  for (; r + 2 <= num_rows; r += 2) {
    const double* b0 = rows + r * dim;
    const double* b1 = b0 + dim;
    __m128d a0 = _mm_setzero_pd();
    __m128d a1 = _mm_setzero_pd();
    __m128d c0 = _mm_setzero_pd();
    __m128d c1 = _mm_setzero_pd();
    size_t i = 0;
    for (; i + 4 <= dim; i += 4) {
      const __m128d q0 = _mm_loadu_pd(q + i);
      const __m128d q1 = _mm_loadu_pd(q + i + 2);
      const __m128d d0 = _mm_sub_pd(q0, _mm_loadu_pd(b0 + i));
      const __m128d d1 = _mm_sub_pd(q1, _mm_loadu_pd(b0 + i + 2));
      a0 = _mm_add_pd(a0, _mm_mul_pd(d0, d0));
      a1 = _mm_add_pd(a1, _mm_mul_pd(d1, d1));
      const __m128d e0 = _mm_sub_pd(q0, _mm_loadu_pd(b1 + i));
      const __m128d e1 = _mm_sub_pd(q1, _mm_loadu_pd(b1 + i + 2));
      c0 = _mm_add_pd(c0, _mm_mul_pd(e0, e0));
      c1 = _mm_add_pd(c1, _mm_mul_pd(e1, e1));
    }
    double s0 = HSum128(_mm_add_pd(a0, a1));
    double s1 = HSum128(_mm_add_pd(c0, c1));
    for (; i < dim; ++i) {
      const double diff0 = q[i] - b0[i];
      s0 += diff0 * diff0;
      const double diff1 = q[i] - b1[i];
      s1 += diff1 * diff1;
    }
    out[r] = s0;
    out[r + 1] = s1;
  }
  if (r < num_rows) out[r] = SquaredDistanceSse2(q, rows + r * dim, dim);
}

constexpr KernelOps kSse2Ops = {
    &DotSse2,
    &SquaredDistanceSse2,
    &SquaredDistanceBoundedSse2,
    &SquaredDistanceBatchSse2,
};

// ---------------------------------------------------------------------
// AVX2 + FMA backend. Compiled via target attributes so a single TU
// holds every backend (all build presets — including sanitize/tsan —
// therefore compile and, on capable hardware, execute the intrinsics
// paths). Four-element blocks alternate between two 256-bit FMA
// accumulators; bounded shares the assignment, as above.
// ---------------------------------------------------------------------

__attribute__((target("avx2,fma"))) inline double HSum256(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

__attribute__((target("avx2,fma"))) double DotAvx2(const double* a,
                                                   const double* b,
                                                   size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  double sum = HSum256(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2,fma"))) double SquaredDistanceAvx2(
    const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(a + i + 4),
                                     _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
  }
  double sum = HSum256(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

__attribute__((target("avx2,fma"))) double SquaredDistanceBoundedAvx2(
    const double* a, const double* b, size_t n, double threshold) {
  constexpr size_t kCheckStride = 32;
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  size_t next_check = kCheckStride;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(a + i + 4),
                                     _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
    if (i + 8 >= next_check) {
      const double partial = HSum256(_mm256_add_pd(acc0, acc1));
      if (partial > threshold) return partial;
      next_check += kCheckStride;
    }
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
  }
  double sum = HSum256(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
    if (sum > threshold) return sum;
  }
  return sum;
}

// Four-rows-per-pass batch; same rationale and bit-parity argument as
// the SSE2 variant (per-row acc0/acc1 assignment matches
// SquaredDistanceAvx2 exactly, including the 4-wide remainder and the
// scalar tail). Four independent row streams keep enough loads in
// flight to saturate memory bandwidth when the matrix spills the L2.
__attribute__((target("avx2,fma"))) void SquaredDistanceBatchAvx2(
    const double* q, const double* rows, size_t num_rows, size_t dim,
    double* out) {
  size_t r = 0;
  for (; r + 4 <= num_rows; r += 4) {
    const double* b0 = rows + r * dim;
    const double* b1 = b0 + dim;
    const double* b2 = b1 + dim;
    const double* b3 = b2 + dim;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d c0 = _mm256_setzero_pd();
    __m256d c1 = _mm256_setzero_pd();
    __m256d e0 = _mm256_setzero_pd();
    __m256d e1 = _mm256_setzero_pd();
    __m256d f0 = _mm256_setzero_pd();
    __m256d f1 = _mm256_setzero_pd();
    size_t i = 0;
    for (; i + 8 <= dim; i += 8) {
      const __m256d q0 = _mm256_loadu_pd(q + i);
      const __m256d q1 = _mm256_loadu_pd(q + i + 4);
      __m256d d = _mm256_sub_pd(q0, _mm256_loadu_pd(b0 + i));
      a0 = _mm256_fmadd_pd(d, d, a0);
      d = _mm256_sub_pd(q1, _mm256_loadu_pd(b0 + i + 4));
      a1 = _mm256_fmadd_pd(d, d, a1);
      d = _mm256_sub_pd(q0, _mm256_loadu_pd(b1 + i));
      c0 = _mm256_fmadd_pd(d, d, c0);
      d = _mm256_sub_pd(q1, _mm256_loadu_pd(b1 + i + 4));
      c1 = _mm256_fmadd_pd(d, d, c1);
      d = _mm256_sub_pd(q0, _mm256_loadu_pd(b2 + i));
      e0 = _mm256_fmadd_pd(d, d, e0);
      d = _mm256_sub_pd(q1, _mm256_loadu_pd(b2 + i + 4));
      e1 = _mm256_fmadd_pd(d, d, e1);
      d = _mm256_sub_pd(q0, _mm256_loadu_pd(b3 + i));
      f0 = _mm256_fmadd_pd(d, d, f0);
      d = _mm256_sub_pd(q1, _mm256_loadu_pd(b3 + i + 4));
      f1 = _mm256_fmadd_pd(d, d, f1);
    }
    for (; i + 4 <= dim; i += 4) {
      const __m256d q0 = _mm256_loadu_pd(q + i);
      __m256d d = _mm256_sub_pd(q0, _mm256_loadu_pd(b0 + i));
      a0 = _mm256_fmadd_pd(d, d, a0);
      d = _mm256_sub_pd(q0, _mm256_loadu_pd(b1 + i));
      c0 = _mm256_fmadd_pd(d, d, c0);
      d = _mm256_sub_pd(q0, _mm256_loadu_pd(b2 + i));
      e0 = _mm256_fmadd_pd(d, d, e0);
      d = _mm256_sub_pd(q0, _mm256_loadu_pd(b3 + i));
      f0 = _mm256_fmadd_pd(d, d, f0);
    }
    double s0 = HSum256(_mm256_add_pd(a0, a1));
    double s1 = HSum256(_mm256_add_pd(c0, c1));
    double s2 = HSum256(_mm256_add_pd(e0, e1));
    double s3 = HSum256(_mm256_add_pd(f0, f1));
    for (; i < dim; ++i) {
      const double diff0 = q[i] - b0[i];
      s0 += diff0 * diff0;
      const double diff1 = q[i] - b1[i];
      s1 += diff1 * diff1;
      const double diff2 = q[i] - b2[i];
      s2 += diff2 * diff2;
      const double diff3 = q[i] - b3[i];
      s3 += diff3 * diff3;
    }
    out[r] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < num_rows; ++r) {
    out[r] = SquaredDistanceAvx2(q, rows + r * dim, dim);
  }
}

constexpr KernelOps kAvx2Ops = {
    &DotAvx2,
    &SquaredDistanceAvx2,
    &SquaredDistanceBoundedAvx2,
    &SquaredDistanceBatchAvx2,
};

bool CpuHasAvx2Fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#endif  // VITRI_KERNELS_X86

// Process-wide backend. -1 = not yet resolved; resolution happens once,
// on first use (or earlier via DisableSimd), and the chosen backend is
// then fixed for the life of the process.
std::atomic<int> g_backend{-1};

}  // namespace

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kSse2:
      return "sse2";
    case KernelBackend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool KernelBackendAvailable(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return true;
#if VITRI_KERNELS_X86
    case KernelBackend::kSse2:
      return true;  // Baseline on x86-64.
    case KernelBackend::kAvx2:
      return CpuHasAvx2Fma();
#else
    case KernelBackend::kSse2:
    case KernelBackend::kAvx2:
      return false;
#endif
  }
  return false;
}

const KernelOps& KernelOpsFor(KernelBackend backend) {
  assert(KernelBackendAvailable(backend));
  switch (backend) {
    case KernelBackend::kScalar:
      return kScalarOps;
#if VITRI_KERNELS_X86
    case KernelBackend::kSse2:
      return kSse2Ops;
    case KernelBackend::kAvx2:
      return kAvx2Ops;
#else
    case KernelBackend::kSse2:
    case KernelBackend::kAvx2:
      break;
#endif
  }
  return kScalarOps;
}

bool SimdDisabledByEnv() {
  const char* env = GetEnv("VITRI_DISABLE_SIMD");
  if (env == nullptr || env[0] == '\0') return false;
  return std::strcmp(env, "0") != 0;
}

KernelBackend ResolveKernelBackend(bool disable_simd) {
  if (disable_simd) return KernelBackend::kScalar;
  if (KernelBackendAvailable(KernelBackend::kAvx2)) {
    return KernelBackend::kAvx2;
  }
  if (KernelBackendAvailable(KernelBackend::kSse2)) {
    return KernelBackend::kSse2;
  }
  return KernelBackend::kScalar;
}

KernelBackend ActiveKernelBackend() {
  int b = g_backend.load(std::memory_order_relaxed);
  if (b < 0) {
    const int resolved =
        static_cast<int>(ResolveKernelBackend(SimdDisabledByEnv()));
    // Concurrent first uses resolve to the same value, so the race is
    // benign; compare_exchange keeps any DisableSimd() pin authoritative.
    g_backend.compare_exchange_strong(b, resolved,
                                      std::memory_order_relaxed);
    b = g_backend.load(std::memory_order_relaxed);
  }
  return static_cast<KernelBackend>(b);
}

const KernelOps& ActiveKernelOps() {
  return KernelOpsFor(ActiveKernelBackend());
}

void DisableSimd() {
  g_backend.store(static_cast<int>(KernelBackend::kScalar),
                  std::memory_order_relaxed);
}

double SquaredDistanceBounded(VecView a, VecView b, double threshold) {
  assert(a.size() == b.size());
  return ActiveKernelOps().squared_distance_bounded(a.data(), b.data(),
                                                    a.size(), threshold);
}

void SquaredDistanceBatch(const KernelOps& ops, VecView query,
                          const FrameMatrix& frames,
                          std::span<double> out) {
  assert(query.size() == frames.dim() || frames.empty());
  assert(out.size() == frames.num_rows());
  ops.squared_distance_batch(query.data(), frames.data(),
                             frames.num_rows(), frames.dim(), out.data());
}

void SquaredDistanceBatch(VecView query, const FrameMatrix& frames,
                          std::span<double> out) {
  SquaredDistanceBatch(ActiveKernelOps(), query, frames, out);
}

ArgMinResult ArgMinSquaredDistance(const KernelOps& ops, VecView query,
                                   const FrameMatrix& rows,
                                   bool early_abandon) {
  assert(rows.num_rows() > 0);
  assert(query.size() == rows.dim());
  const size_t dim = rows.dim();
  const double* base = rows.data();
  const size_t n = rows.num_rows();
  ArgMinResult best;
  best.squared_distance = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < n; ++r) {
    const double d =
        early_abandon
            ? ops.squared_distance_bounded(query.data(), base + r * dim,
                                           dim, best.squared_distance)
            : ops.squared_distance(query.data(), base + r * dim, dim);
    if (d < best.squared_distance) {
      best.squared_distance = d;
      best.index = r;
    }
  }
  return best;
}

ArgMinResult ArgMinSquaredDistance(VecView query, const FrameMatrix& rows,
                                   bool early_abandon) {
  return ArgMinSquaredDistance(ActiveKernelOps(), query, rows,
                               early_abandon);
}

}  // namespace vitri::linalg
