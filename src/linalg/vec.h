#ifndef VITRI_LINALG_VEC_H_
#define VITRI_LINALG_VEC_H_

#include <cstddef>
#include <span>
#include <vector>

namespace vitri::linalg {

/// Dense feature vector. Frame features and ViTri positions are plain
/// std::vector<double>; these free functions give the library one audited
/// implementation of each primitive. Dot/Norm/SquaredDistance/Distance
/// dispatch to the SIMD kernel layer (linalg/kernels.h); hot one-to-many
/// loops should use the batch/bounded kernels there directly, over a
/// contiguous linalg::FrameMatrix (linalg/frame_matrix.h).
using Vec = std::vector<double>;

/// Read-only view over contiguous doubles; all kernels below accept views
/// so callers can pass raw page buffers without copying.
using VecView = std::span<const double>;

/// Inner product <a, b>. Requires a.size() == b.size().
double Dot(VecView a, VecView b);

/// Euclidean (L2) norm.
double Norm(VecView a);

/// Squared Euclidean distance between a and b.
double SquaredDistance(VecView a, VecView b);

/// Euclidean distance between a and b.
double Distance(VecView a, VecView b);

/// a += b. Requires equal sizes.
void AddInPlace(Vec& a, VecView b);

/// a -= b. Requires equal sizes.
void SubInPlace(Vec& a, VecView b);

/// a *= s.
void ScaleInPlace(Vec& a, double s);

/// Returns a + s * b.
Vec Axpy(VecView a, double s, VecView b);

/// Returns the arithmetic mean of `points` (all the same dimension);
/// empty input yields an empty vector.
Vec Mean(const std::vector<Vec>& points);

}  // namespace vitri::linalg

#endif  // VITRI_LINALG_VEC_H_
