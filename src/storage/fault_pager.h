#ifndef VITRI_STORAGE_FAULT_PAGER_H_
#define VITRI_STORAGE_FAULT_PAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace vitri::storage {

/// What a fault rule does when it fires.
enum class FaultKind {
  /// Read/Write/Sync fails with IoError; the next attempt may succeed
  /// (the rule consumes one of its fires).
  kTransientIoError,
  /// Every matching operation fails with IoError, forever.
  kPersistentIoError,
  /// The operation succeeds but one seeded-random bit of the page is
  /// flipped (in the returned buffer on reads, in the stored bytes on
  /// writes). Silent — detection is the checksum layer's job.
  kBitFlip,
  /// A write persists only the first half of the page; the second half
  /// keeps its previous contents (or zeros for a never-written page).
  /// Models a power-cut torn write. Reported to the caller as success.
  kTornWrite,
  /// Sync fails with IoError.
  kSyncFailure,
};

/// Which pager operation a rule applies to.
enum class FaultOp { kRead, kWrite, kSync };

const char* FaultKindName(FaultKind kind);

/// Matches any page id in a FaultRule.
inline constexpr PageId kAnyPage = kInvalidPageId;

/// One entry of a deterministic fault schedule. Matching operations are
/// counted per rule; the rule fires on the (after+every)-th, then every
/// `every`-th match, at most `limit` times (kPersistentIoError ignores
/// `every`/`limit` and fires on every match past `after`).
struct FaultRule {
  FaultKind kind = FaultKind::kTransientIoError;
  FaultOp op = FaultOp::kRead;
  PageId page = kAnyPage;
  uint64_t after = 0;
  uint64_t every = 1;
  uint64_t limit = UINT64_MAX;
};

/// Counters of injected faults, by kind.
struct FaultStats {
  uint64_t transient_io_errors = 0;
  uint64_t persistent_io_errors = 0;
  uint64_t bit_flips = 0;
  uint64_t torn_writes = 0;
  uint64_t sync_failures = 0;

  uint64_t total() const {
    return transient_io_errors + persistent_io_errors + bit_flips +
           torn_writes + sync_failures;
  }
  std::string ToString() const;
};

/// Decorator injecting a deterministic, seeded schedule of storage
/// faults into any Pager. Rules can be added/cleared at any time, so a
/// test can build a healthy index first and sabotage it afterwards.
/// Allocate is always passed through unharmed.
class FaultInjectingPager final : public Pager {
 public:
  explicit FaultInjectingPager(std::unique_ptr<Pager> base,
                               uint64_t seed = 2005);

  void AddRule(const FaultRule& rule);
  void ClearRules();

  const FaultStats& fault_stats() const { return stats_; }
  Pager* base() const { return base_.get(); }

  PageId num_pages() const override;
  Result<PageId> Allocate() override;
  Status Read(PageId id, uint8_t* out) override;
  Status Write(PageId id, const uint8_t* src) override;
  Status Sync() override;

 private:
  struct ArmedRule {
    FaultRule rule;
    uint64_t matches = 0;
    uint64_t fired = 0;
  };

  /// Returns the kind of the first rule firing for (op, id), advancing
  /// all matching rules' counters; nullptr when no rule fires.
  const FaultRule* NextFault(FaultOp op, PageId id);
  void CountFault(FaultKind kind);
  void FlipRandomBit(uint8_t* page);

  std::unique_ptr<Pager> base_;
  std::vector<ArmedRule> rules_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace vitri::storage

#endif  // VITRI_STORAGE_FAULT_PAGER_H_
