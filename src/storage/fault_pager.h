#ifndef VITRI_STORAGE_FAULT_PAGER_H_
#define VITRI_STORAGE_FAULT_PAGER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/annotated_lock.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace vitri::storage {

/// What a fault rule does when it fires.
enum class FaultKind {
  /// Read/Write/Sync fails with IoError; the next attempt may succeed
  /// (the rule consumes one of its fires).
  kTransientIoError,
  /// Every matching operation fails with IoError, forever.
  kPersistentIoError,
  /// The operation succeeds but one seeded-random bit of the page is
  /// flipped (in the returned buffer on reads, in the stored bytes on
  /// writes). Silent — detection is the checksum layer's job.
  kBitFlip,
  /// A write persists only the first half of the page; the second half
  /// keeps its previous contents (or zeros for a never-written page).
  /// Models a power-cut torn write. Reported to the caller as success.
  kTornWrite,
  /// Sync fails with IoError.
  kSyncFailure,
};

/// Which pager operation a rule applies to.
enum class FaultOp { kRead, kWrite, kSync };

const char* FaultKindName(FaultKind kind);

/// Matches any page id in a FaultRule.
inline constexpr PageId kAnyPage = kInvalidPageId;

/// One entry of a deterministic fault schedule. Matching operations are
/// counted per rule; the rule fires on the (after+every)-th, then every
/// `every`-th match, at most `limit` times (kPersistentIoError ignores
/// `every`/`limit` and fires on every match past `after`).
struct FaultRule {
  FaultKind kind = FaultKind::kTransientIoError;
  FaultOp op = FaultOp::kRead;
  PageId page = kAnyPage;
  uint64_t after = 0;
  uint64_t every = 1;
  uint64_t limit = UINT64_MAX;
};

/// Counters of injected faults, by kind.
struct FaultStats {
  uint64_t transient_io_errors = 0;
  uint64_t persistent_io_errors = 0;
  uint64_t bit_flips = 0;
  uint64_t torn_writes = 0;
  uint64_t sync_failures = 0;

  uint64_t total() const {
    return transient_io_errors + persistent_io_errors + bit_flips +
           torn_writes + sync_failures;
  }
  std::string ToString() const;
};

/// Decorator injecting a deterministic, seeded schedule of storage
/// faults into any Pager. Rules can be added/cleared at any time, so a
/// test can build a healthy index first and sabotage it afterwards.
/// Allocate and WillNeed are always passed through unharmed (readahead
/// is advisory — the demand Read is where a fault must land to count).
///
/// The rule/rng/stats bookkeeping sits under an internal latch so the
/// sharded buffer pool's concurrent I/O keeps schedules deterministic
/// *per rule* (which operation of a page's sequence fires) even though
/// cross-page interleaving is up to the scheduler.
class FaultInjectingPager final : public Pager {
 public:
  explicit FaultInjectingPager(std::unique_ptr<Pager> base,
                               uint64_t seed = 2005);

  void AddRule(const FaultRule& rule) VITRI_EXCLUDES(mu_);
  void ClearRules() VITRI_EXCLUDES(mu_);

  FaultStats fault_stats() const VITRI_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }
  Pager* base() const { return base_.get(); }

  PageId num_pages() const override;
  Result<PageId> Allocate() override;
  Status Read(PageId id, uint8_t* out) override;
  Status Write(PageId id, const uint8_t* src) override;
  Status Sync() override;
  void WillNeed(PageId first, size_t count) override;

 private:
  struct ArmedRule {
    FaultRule rule;
    uint64_t matches = 0;
    uint64_t fired = 0;
  };

  /// Returns the kind of the first rule firing for (op, id), advancing
  /// all matching rules' counters under one latch hold (so each rule's
  /// schedule position is race-free); kind is returned by value because
  /// the rule vector may be cleared while the caller acts on the
  /// verdict. nullopt when no rule fires. Counting happens separately at
  /// the action site — a bit-flip whose underlying read failed consumed
  /// a fire but injected nothing.
  std::optional<FaultKind> NextFault(FaultOp op, PageId id)
      VITRI_EXCLUDES(mu_);
  void CountFault(FaultKind kind) VITRI_EXCLUDES(mu_);
  void FlipRandomBit(uint8_t* page) VITRI_EXCLUDES(mu_);

  std::unique_ptr<Pager> base_;
  mutable Mutex mu_;
  std::vector<ArmedRule> rules_ VITRI_GUARDED_BY(mu_);
  Rng rng_ VITRI_GUARDED_BY(mu_);
  FaultStats stats_ VITRI_GUARDED_BY(mu_);
};

}  // namespace vitri::storage

#endif  // VITRI_STORAGE_FAULT_PAGER_H_
