#ifndef VITRI_STORAGE_PAGE_H_
#define VITRI_STORAGE_PAGE_H_

#include <cstdint>

namespace vitri::storage {

/// Identifier of a fixed-size page within a pager's address space.
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = UINT32_MAX;

/// Default page size, matching the paper's experimental setup (4K).
inline constexpr size_t kDefaultPageSize = 4096;

/// Bytes at the end of every page reserved for the integrity footer
/// (checksum + format epoch; see storage/page_footer.h). Page clients
/// must keep their payload within [0, page_size - kPageFooterSize).
inline constexpr size_t kPageFooterSize = 8;

}  // namespace vitri::storage

#endif  // VITRI_STORAGE_PAGE_H_
