#ifndef VITRI_STORAGE_PAGE_H_
#define VITRI_STORAGE_PAGE_H_

#include <cstdint>

namespace vitri::storage {

/// Identifier of a fixed-size page within a pager's address space.
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = UINT32_MAX;

/// Default page size, matching the paper's experimental setup (4K).
inline constexpr size_t kDefaultPageSize = 4096;

}  // namespace vitri::storage

#endif  // VITRI_STORAGE_PAGE_H_
