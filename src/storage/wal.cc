#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/metrics.h"
#include "common/os.h"
#include "common/stopwatch.h"

namespace vitri::storage {

// --- framing ----------------------------------------------------------

void AppendWalRecord(uint8_t type, std::span<const uint8_t> payload,
                     std::vector<uint8_t>* out) {
  const uint32_t length = static_cast<uint32_t>(payload.size()) + 1;
  const size_t base = out->size();
  out->resize(base + kWalFrameHeaderSize + length);
  uint8_t* p = out->data() + base;
  EncodeU32(p, length);
  p[8] = type;
  if (!payload.empty()) {
    std::memcpy(p + 9, payload.data(), payload.size());
  }
  const uint32_t crc = Crc32c(p + 8, length);
  EncodeU32(p + 4, crc);
}

// --- MemWalFile -------------------------------------------------------

Status MemWalFile::ReadAt(uint64_t offset, uint8_t* out, size_t n) {
  if (offset > data_.size() || data_.size() - offset < n) {
    return Status::IoError("MemWalFile: read past end");
  }
  std::memcpy(out, data_.data() + offset, n);
  return Status::OK();
}

Status MemWalFile::Truncate(uint64_t new_size) {
  if (new_size > data_.size()) {
    return Status::IoError("MemWalFile: truncate would extend");
  }
  data_.resize(new_size);
  return Status::OK();
}

// --- PosixWalFile -----------------------------------------------------

PosixWalFile::PosixWalFile(int fd, uint64_t size, FileSyncMode sync_mode)
    : fd_(fd), size_(size), sync_mode_(sync_mode) {}

PosixWalFile::~PosixWalFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<PosixWalFile>> PosixWalFile::Open(
    const std::string& path, FileSyncMode sync_mode) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + ErrnoString(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("fstat(" + path + "): " + ErrnoString(errno));
  }
  return std::unique_ptr<PosixWalFile>(new PosixWalFile(
      fd, static_cast<uint64_t>(st.st_size), sync_mode));
}

Status PosixWalFile::Append(const uint8_t* data, size_t n) {
  VITRI_RETURN_IF_ERROR(
      WriteFullyAt(fd_, data, n, static_cast<off_t>(size_)));
  size_ += n;
  return Status::OK();
}

Status PosixWalFile::ReadAt(uint64_t offset, uint8_t* out, size_t n) {
  return ReadFullyAt(fd_, out, n, static_cast<off_t>(offset));
}

Status PosixWalFile::Truncate(uint64_t new_size) {
  for (;;) {
    if (::ftruncate(fd_, static_cast<off_t>(new_size)) == 0) break;
    if (errno == EINTR) continue;
    return Status::IoError(std::string("ftruncate: ") +
                           ErrnoString(errno));
  }
  size_ = new_size;
  return Status::OK();
}

Status PosixWalFile::Sync() { return SyncFd(fd_, sync_mode_); }

// --- FaultInjectingWalFile --------------------------------------------

FaultInjectingWalFile::FaultInjectingWalFile(
    std::unique_ptr<WalFile> base, std::shared_ptr<CrashSchedule> schedule)
    : base_(std::move(base)),
      schedule_(std::move(schedule)),
      synced_size_(base_->size()) {}

Status FaultInjectingWalFile::PowerCut() {
  if (!cut_applied_) {
    cut_applied_ = true;
    // Everything synced survives; the unsynced suffix tears at a
    // seeded-random byte.
    const uint64_t unsynced = base_->size() - synced_size_;
    const uint64_t keep =
        unsynced == 0 ? 0 : schedule_->rng.UniformU64(unsynced + 1);
    // Best effort: the harness owns the file state from here.
    (void)base_->Truncate(synced_size_ + keep);
  }
  return Status::IoError("simulated power failure");
}

Status FaultInjectingWalFile::Append(const uint8_t* data, size_t n) {
  if (schedule_->Tick()) {
    // The doomed append still lands in the "page cache" so the tear
    // point can fall inside it.
    if (!cut_applied_) (void)base_->Append(data, n);
    return PowerCut();
  }
  return base_->Append(data, n);
}

Status FaultInjectingWalFile::ReadAt(uint64_t offset, uint8_t* out,
                                     size_t n) {
  // Reads are not durability ops (and replay after "reboot" goes
  // through a fresh healthy file), so they neither tick nor fail.
  return base_->ReadAt(offset, out, n);
}

Status FaultInjectingWalFile::Truncate(uint64_t new_size) {
  if (schedule_->Tick()) return PowerCut();
  VITRI_RETURN_IF_ERROR(base_->Truncate(new_size));
  if (synced_size_ > new_size) synced_size_ = new_size;
  return Status::OK();
}

Status FaultInjectingWalFile::Sync() {
  if (schedule_->Tick()) return PowerCut();
  VITRI_RETURN_IF_ERROR(base_->Sync());
  synced_size_ = base_->size();
  return Status::OK();
}

// --- replay -----------------------------------------------------------

Result<WalReplayResult> ReplayWal(
    WalFile* file,
    const std::function<Status(uint64_t seqno,
                               std::span<const uint8_t> payload)>& apply,
    bool repair) {
  WalReplayResult out;
  const uint64_t file_size = file->size();
  uint64_t offset = 0;

  // Data records seen since the last commit marker, waiting for one.
  std::vector<std::vector<uint8_t>> pending;
  uint64_t next_seqno = 1;

  while (offset < file_size) {
    uint8_t header[kWalFrameHeaderSize];
    if (file_size - offset < kWalFrameHeaderSize) {
      out.torn_tail = true;
      break;
    }
    VITRI_RETURN_IF_ERROR(file->ReadAt(offset, header, sizeof(header)));
    const uint32_t length = DecodeU32(header);
    const uint32_t want_crc = DecodeU32(header + 4);
    if (length == 0 || length > kWalMaxRecordLength ||
        file_size - offset - kWalFrameHeaderSize < length) {
      out.torn_tail = true;
      break;
    }
    std::vector<uint8_t> body(length);
    VITRI_RETURN_IF_ERROR(
        file->ReadAt(offset + kWalFrameHeaderSize, body.data(), length));
    if (Crc32c(body.data(), body.size()) != want_crc) {
      out.torn_tail = true;
      break;
    }
    const uint8_t type = body[0];
    if (type == kWalDataRecord) {
      body.erase(body.begin());
      pending.push_back(std::move(body));
    } else if (type == kWalCommitRecord) {
      if (length != 1 + sizeof(uint64_t)) {
        out.torn_tail = true;  // Malformed commit: treat as corrupt.
        break;
      }
      const uint64_t seqno = DecodeU64(body.data() + 1);
      if (seqno != next_seqno) {
        // A stale or reordered commit is corruption, not a torn tail:
        // the frame itself checksummed clean.
        return Status::Corruption(
            "wal: commit sequence " + std::to_string(seqno) +
            " where " + std::to_string(next_seqno) + " was expected");
      }
      for (const auto& payload : pending) {
        VITRI_RETURN_IF_ERROR(apply(
            seqno, std::span<const uint8_t>(payload.data(), payload.size())));
        ++out.records_applied;
      }
      pending.clear();
      ++next_seqno;
      ++out.commits;
      out.committed_end = offset + kWalFrameHeaderSize + length;
      VITRI_METRIC_COUNTER("wal.replay.commits")->Increment();
    } else {
      out.torn_tail = true;  // Unknown type: corrupt frame.
      break;
    }
    offset += kWalFrameHeaderSize + length;
  }

  out.records_discarded = pending.size();
  out.bytes_discarded = file_size - out.committed_end;
  VITRI_METRIC_COUNTER("wal.replay.records_applied")
      ->Increment(out.records_applied);
  if (out.torn_tail) {
    VITRI_METRIC_COUNTER("wal.replay.torn_tails")->Increment();
  }
  if (repair && out.bytes_discarded > 0) {
    VITRI_RETURN_IF_ERROR(file->Truncate(out.committed_end));
    VITRI_METRIC_COUNTER("wal.replay.bytes_truncated")
        ->Increment(out.bytes_discarded);
  }
  return out;
}

// --- WalWriter --------------------------------------------------------

WalWriter::WalWriter(std::unique_ptr<WalFile> file, WalOptions options,
                     uint64_t base_seqno)
    : file_(std::move(file)),
      options_(options),
      base_seqno_(base_seqno),
      seqno_(base_seqno),
      durable_seqno_(base_seqno) {}

Status WalWriter::Append(std::span<const uint8_t> payload) {
  if (payload.size() + 1 > kWalMaxRecordLength) {
    return Status::InvalidArgument("wal record payload too large");
  }
  AppendWalRecord(kWalDataRecord, payload, &batch_);
  ++batch_records_;
  return Status::OK();
}

Status WalWriter::Commit() {
  uint8_t seq[8];
  EncodeU64(seq, seqno_ + 1);
  AppendWalRecord(kWalCommitRecord, std::span<const uint8_t>(seq, 8),
                  &batch_);
  const uint64_t batch_bytes = batch_.size();
  const uint64_t batch_records = batch_records_;

  Stopwatch append_watch;
  const Status appended = file_->Append(batch_.data(), batch_.size());
  VITRI_METRIC_HISTOGRAM("wal.append_latency_us")
      ->Record(static_cast<uint64_t>(append_watch.ElapsedMicros()));
  // Win or lose, the batch is spent: on failure the file holds at most
  // a torn prefix of it, which replay discards at the commit boundary.
  batch_.clear();
  batch_records_ = 0;
  VITRI_RETURN_IF_ERROR(appended);

  ++seqno_;
  appended_bytes_ += batch_bytes;
  ++unsynced_commits_;
  unsynced_bytes_ += batch_bytes;
  VITRI_METRIC_COUNTER("wal.commits")->Increment();
  VITRI_METRIC_COUNTER("wal.appends")
      ->Increment(batch_records);
  VITRI_METRIC_COUNTER("wal.append_bytes")
      ->Increment(batch_bytes);

  switch (options_.sync_mode) {
    case WalSyncMode::kEveryCommit:
      return Sync();
    case WalSyncMode::kGrouped:
      if (unsynced_commits_ >= options_.group_commits ||
          unsynced_bytes_ >= options_.group_bytes) {
        return Sync();
      }
      return Status::OK();
    case WalSyncMode::kNone:
      return Status::OK();
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (durable_seqno_ == seqno_) return Status::OK();
  Stopwatch watch;
  VITRI_RETURN_IF_ERROR(file_->Sync());
  VITRI_METRIC_COUNTER("wal.syncs")->Increment();
  VITRI_METRIC_HISTOGRAM("wal.fsync_latency_us")
      ->Record(static_cast<uint64_t>(watch.ElapsedMicros()));
  durable_seqno_ = seqno_;
  unsynced_commits_ = 0;
  unsynced_bytes_ = 0;
  return Status::OK();
}

}  // namespace vitri::storage
