#ifndef VITRI_STORAGE_PAGER_H_
#define VITRI_STORAGE_PAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/posix_io.h"

namespace vitri::storage {

/// Abstract fixed-size-page store. Implementations: in-memory (tests,
/// benchmarks) and file-backed (durability, examples).
class Pager {
 public:
  virtual ~Pager() = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Size in bytes of every page.
  size_t page_size() const { return page_size_; }

  /// Number of allocated pages; valid PageIds are [0, num_pages()).
  virtual PageId num_pages() const = 0;

  /// Allocates a new zeroed page and returns its id.
  virtual Result<PageId> Allocate() = 0;

  /// Reads page `id` into `out` (page_size() bytes).
  virtual Status Read(PageId id, uint8_t* out) = 0;

  /// Writes page `id` from `src` (page_size() bytes).
  virtual Status Write(PageId id, const uint8_t* src) = 0;

  /// Flushes buffered writes to the backing medium.
  virtual Status Sync() = 0;

 protected:
  explicit Pager(size_t page_size) : page_size_(page_size) {}

 private:
  size_t page_size_;
};

/// Heap-backed pager. Fast and ephemeral.
class MemPager final : public Pager {
 public:
  explicit MemPager(size_t page_size = kDefaultPageSize);

  PageId num_pages() const override;
  Result<PageId> Allocate() override;
  Status Read(PageId id, uint8_t* out) override;
  Status Write(PageId id, const uint8_t* src) override;
  Status Sync() override;

 private:
  std::vector<std::vector<uint8_t>> pages_;
};

/// Result of an integrity scan over a pager (see VerifyAllPages).
struct PageVerifyReport {
  uint64_t pages_scanned = 0;
  /// Pages carrying a footer whose epoch or checksum is wrong.
  std::vector<PageId> corrupt;
  /// Pages without a footer (never written through a BufferPool, or
  /// written by a pre-footer build) — readable but unverifiable.
  uint64_t unstamped = 0;

  bool clean() const { return corrupt.empty(); }
};

/// Reads every page of `pager` and verifies its integrity footer. Read
/// failures count the page as corrupt too (the bytes are unreachable).
Result<PageVerifyReport> VerifyAllPages(Pager* pager);

/// File-backed pager over a single file, pages stored contiguously.
class FilePager final : public Pager {
 public:
  /// Opens (creating if necessary) `path`. The existing file length must
  /// be a multiple of page_size. `sync_mode` selects what Sync() does:
  /// fsync (default), fdatasync (skips metadata recovery never reads),
  /// or none (benchmarks; durability left to OS writeback).
  static Result<std::unique_ptr<FilePager>> Open(
      const std::string& path, size_t page_size = kDefaultPageSize,
      FileSyncMode sync_mode = FileSyncMode::kFsync);

  ~FilePager() override;

  PageId num_pages() const override;
  Result<PageId> Allocate() override;
  Status Read(PageId id, uint8_t* out) override;
  Status Write(PageId id, const uint8_t* src) override;
  Status Sync() override;

  FileSyncMode sync_mode() const { return sync_mode_; }

 private:
  FilePager(int fd, size_t page_size, PageId num_pages,
            FileSyncMode sync_mode);

  int fd_;
  PageId num_pages_;
  FileSyncMode sync_mode_;
};

}  // namespace vitri::storage

#endif  // VITRI_STORAGE_PAGER_H_
