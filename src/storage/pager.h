#ifndef VITRI_STORAGE_PAGER_H_
#define VITRI_STORAGE_PAGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/annotated_lock.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/posix_io.h"

namespace vitri::storage {

/// Abstract fixed-size-page store. Implementations: in-memory (tests,
/// benchmarks) and file-backed (durability, examples).
///
/// Thread-safety contract (since the buffer pool was sharded and its
/// I/O moved outside the shard latches, DESIGN.md §16): implementations
/// must tolerate concurrent Read/Write/WillNeed calls on *distinct*
/// pages, plus concurrent Allocate/num_pages/Sync from any thread.
/// Concurrent Read/Write of the *same* page is excluded by the caller —
/// the pool's per-frame load/evict states serialize per-page I/O.
class Pager {
 public:
  virtual ~Pager() = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Size in bytes of every page.
  size_t page_size() const { return page_size_; }

  /// Number of allocated pages; valid PageIds are [0, num_pages()).
  virtual PageId num_pages() const = 0;

  /// Allocates a new zeroed page and returns its id.
  virtual Result<PageId> Allocate() = 0;

  /// Reads page `id` into `out` (page_size() bytes).
  virtual Status Read(PageId id, uint8_t* out) = 0;

  /// Writes page `id` from `src` (page_size() bytes).
  virtual Status Write(PageId id, const uint8_t* src) = 0;

  /// Flushes buffered writes to the backing medium.
  virtual Status Sync() = 0;

  /// Advisory readahead hint: the caller expects to Read pages
  /// [first, first+count) soon (leaf-chain scans hint their upcoming
  /// siblings; bulk-loaded chains are contiguous on disk, so a span is
  /// the right shape). Never fails and never transfers data — the
  /// default is a no-op, FilePager forwards to posix_fadvise(WILLNEED),
  /// and decorators pass it through to their base unfaulted.
  virtual void WillNeed(PageId first, size_t count) {
    (void)first;
    (void)count;
  }

 protected:
  explicit Pager(size_t page_size) : page_size_(page_size) {}

 private:
  size_t page_size_;
};

/// Heap-backed pager. Fast and ephemeral. Pages live in a deque so
/// element addresses survive Allocate's growth: Read/Write resolve the
/// page buffer under the latch, then memcpy outside it — concurrent
/// transfers on distinct pages proceed in parallel (per the Pager
/// contract, same-page concurrency is the caller's to exclude).
class MemPager final : public Pager {
 public:
  explicit MemPager(size_t page_size = kDefaultPageSize);

  PageId num_pages() const override;
  Result<PageId> Allocate() override;
  Status Read(PageId id, uint8_t* out) override;
  Status Write(PageId id, const uint8_t* src) override;
  Status Sync() override;

 private:
  /// Resolves a page's stable buffer address, or null if unallocated.
  uint8_t* PageData(PageId id) VITRI_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::deque<std::vector<uint8_t>> pages_ VITRI_GUARDED_BY(mu_);
};

/// Result of an integrity scan over a pager (see VerifyAllPages).
struct PageVerifyReport {
  uint64_t pages_scanned = 0;
  /// Pages carrying a footer whose epoch or checksum is wrong.
  std::vector<PageId> corrupt;
  /// Pages without a footer (never written through a BufferPool, or
  /// written by a pre-footer build) — readable but unverifiable.
  uint64_t unstamped = 0;

  bool clean() const { return corrupt.empty(); }
};

/// Reads every page of `pager` and verifies its integrity footer. Read
/// failures count the page as corrupt too (the bytes are unreachable).
Result<PageVerifyReport> VerifyAllPages(Pager* pager);

/// File-backed pager over a single file, pages stored contiguously.
/// Read/Write are plain pread/pwrite (safe concurrently on one fd);
/// Allocate serializes extension under a latch with the page count
/// published atomically for the lock-free bounds checks.
class FilePager final : public Pager {
 public:
  /// Opens (creating if necessary) `path`. The existing file length must
  /// be a multiple of page_size. `sync_mode` selects what Sync() does:
  /// fsync (default), fdatasync (skips metadata recovery never reads),
  /// or none (benchmarks; durability left to OS writeback).
  static Result<std::unique_ptr<FilePager>> Open(
      const std::string& path, size_t page_size = kDefaultPageSize,
      FileSyncMode sync_mode = FileSyncMode::kFsync);

  ~FilePager() override;

  PageId num_pages() const override;
  Result<PageId> Allocate() override;
  Status Read(PageId id, uint8_t* out) override;
  Status Write(PageId id, const uint8_t* src) override;
  Status Sync() override;
  void WillNeed(PageId first, size_t count) override;

  FileSyncMode sync_mode() const { return sync_mode_; }

 private:
  FilePager(int fd, size_t page_size, PageId num_pages,
            FileSyncMode sync_mode);

  int fd_;
  Mutex alloc_mu_;
  std::atomic<PageId> num_pages_;
  FileSyncMode sync_mode_;
};

}  // namespace vitri::storage

#endif  // VITRI_STORAGE_PAGER_H_
