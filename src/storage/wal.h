#ifndef VITRI_STORAGE_WAL_H_
#define VITRI_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/posix_io.h"

namespace vitri::storage {

// Write-ahead log for online index ingest (DESIGN.md §13).
//
// On-disk format: a flat sequence of CRC-32C-framed records,
//
//   [u32 length][u32 crc][u8 type][payload: length-1 bytes]
//
// where `length` counts the type byte plus payload and `crc` covers the
// same span. Two record types exist: kData carries an opaque payload the
// layer above interprets (an encoded insert), kCommit carries a u64
// sequence number and marks everything since the previous commit as
// atomically applied. Replay buffers data records and surfaces them only
// when their commit marker arrives intact; a torn or corrupt record ends
// replay at the last commit boundary — by construction everything before
// it was framed and checksummed — and repair truncates the tail off.

/// Record type tags (the `type` byte above).
inline constexpr uint8_t kWalDataRecord = 1;
inline constexpr uint8_t kWalCommitRecord = 2;

/// Bytes of framing before the type byte: u32 length + u32 crc.
inline constexpr size_t kWalFrameHeaderSize = 8;

/// Upper bound on a single record's `length` field. Anything larger is
/// treated as a torn/corrupt frame during replay, so this also caps how
/// much memory a hostile or scrambled log can make replay allocate.
inline constexpr uint32_t kWalMaxRecordLength = 64u << 20;

/// When Commit() makes the log durable.
enum class WalSyncMode : uint8_t {
  /// Sync on every commit. Slowest, loses nothing that was acked.
  kEveryCommit = 0,
  /// Sync once enough commits or bytes accumulate (group commit). A
  /// crash can lose the unsynced suffix of *acked* commits; the
  /// durable_commits() counter tells the caller how much is safe.
  kGrouped = 1,
  /// Never sync from Commit(); only explicit Sync() calls. Benchmarks.
  kNone = 2,
};

struct WalOptions {
  WalSyncMode sync_mode = WalSyncMode::kEveryCommit;
  /// kGrouped: sync when this many commits are waiting...
  uint64_t group_commits = 8;
  /// ...or when this many unsynced bytes accumulate, whichever first.
  uint64_t group_bytes = 256 * 1024;
  /// How the underlying file turns "written" into "durable".
  FileSyncMode file_sync = FileSyncMode::kFdatasync;
};

/// Append-only byte log the WAL writes through. The indirection exists
/// so tests can interpose a power-failure simulator between the writer
/// and the disk (FaultInjectingWalFile below).
class WalFile {
 public:
  virtual ~WalFile() = default;
  WalFile(const WalFile&) = delete;
  WalFile& operator=(const WalFile&) = delete;

  virtual uint64_t size() const = 0;
  virtual Status Append(const uint8_t* data, size_t n) = 0;
  virtual Status ReadAt(uint64_t offset, uint8_t* out, size_t n) = 0;
  virtual Status Truncate(uint64_t new_size) = 0;
  virtual Status Sync() = 0;

 protected:
  WalFile() = default;
};

/// Heap-backed WalFile: the "disk" is a byte vector and Sync is a
/// no-op. Used by tests and the wal_replay fuzz harness, which feeds
/// arbitrary bytes straight into ReplayWal without touching a
/// filesystem.
class MemWalFile final : public WalFile {
 public:
  MemWalFile() = default;
  explicit MemWalFile(std::vector<uint8_t> contents)
      : data_(std::move(contents)) {}

  uint64_t size() const override { return data_.size(); }
  Status Append(const uint8_t* data, size_t n) override {
    data_.insert(data_.end(), data, data + n);
    return Status::OK();
  }
  Status ReadAt(uint64_t offset, uint8_t* out, size_t n) override;
  Status Truncate(uint64_t new_size) override;
  Status Sync() override { return Status::OK(); }

  const std::vector<uint8_t>& contents() const { return data_; }

 private:
  std::vector<uint8_t> data_;
};

/// POSIX-backed WalFile. EINTR-safe; Sync() uses `sync_mode`.
class PosixWalFile final : public WalFile {
 public:
  static Result<std::unique_ptr<PosixWalFile>> Open(
      const std::string& path, FileSyncMode sync_mode = FileSyncMode::kFdatasync);
  ~PosixWalFile() override;

  uint64_t size() const override { return size_; }
  Status Append(const uint8_t* data, size_t n) override;
  Status ReadAt(uint64_t offset, uint8_t* out, size_t n) override;
  Status Truncate(uint64_t new_size) override;
  Status Sync() override;

 private:
  PosixWalFile(int fd, uint64_t size, FileSyncMode sync_mode);

  int fd_;
  uint64_t size_;
  FileSyncMode sync_mode_;
};

/// Shared countdown driving a simulated power failure. Every durability
/// operation — WAL file appends/syncs/truncates and the recovery
/// layer's named crash-hook points — ticks it once; on the scheduled
/// tick the power goes out: that operation takes partial effect and
/// every later one fails with IoError until the harness "reboots" by
/// reopening through a healthy file. Deterministic given (seed, at_op).
struct CrashSchedule {
  CrashSchedule(uint64_t seed, uint64_t at_op) : rng(seed), remaining(at_op) {}

  /// Returns true when power is (now) out. The first true transition
  /// is the cut itself; callers use `dead` to distinguish it.
  bool Tick() {
    ++ticks;
    if (dead) return true;
    if (remaining == 0) {
      dead = true;
      return true;
    }
    --remaining;
    return false;
  }

  Rng rng;
  uint64_t remaining;
  bool dead = false;
  /// Total ops observed; a dry run with a huge `at_op` reads this back
  /// to learn how many crash points a workload exposes.
  uint64_t ticks = 0;
};

/// Power-failure decorator over a WalFile (the file-level analogue of
/// FaultInjectingPager). Counts durability operations through a shared
/// CrashSchedule; when the cut lands on an Append the data still
/// reaches the OS "page cache" (the base file), but then the unsynced
/// suffix is torn: the file is truncated to the last synced size plus a
/// seeded-random slice of whatever was written since — exactly the
/// state a real power cut leaves behind. After the cut every operation
/// returns IoError("simulated power failure").
class FaultInjectingWalFile final : public WalFile {
 public:
  FaultInjectingWalFile(std::unique_ptr<WalFile> base,
                        std::shared_ptr<CrashSchedule> schedule);

  uint64_t size() const override { return base_->size(); }
  Status Append(const uint8_t* data, size_t n) override;
  Status ReadAt(uint64_t offset, uint8_t* out, size_t n) override;
  Status Truncate(uint64_t new_size) override;
  Status Sync() override;

 private:
  Status PowerCut();

  std::unique_ptr<WalFile> base_;
  std::shared_ptr<CrashSchedule> schedule_;
  uint64_t synced_size_;
  bool cut_applied_ = false;
};

/// What replay found in (and did to) a log.
struct WalReplayResult {
  /// Commit markers applied.
  uint64_t commits = 0;
  /// Data records inside those committed batches.
  uint64_t records_applied = 0;
  /// Intact data records past the last commit marker — written but
  /// never committed, so discarded.
  uint64_t records_discarded = 0;
  /// File offset of the end of the last committed record.
  uint64_t committed_end = 0;
  /// Bytes past committed_end before repair (torn tail + uncommitted).
  uint64_t bytes_discarded = 0;
  /// True when replay stopped on a torn or corrupt frame (as opposed to
  /// a clean end-of-log).
  bool torn_tail = false;
};

/// Scans `file` from offset 0, invoking `apply(seqno, payload)` for
/// every data record of every committed batch, in order. Stops at the
/// first torn/corrupt frame or clean EOF; if `repair` is set, truncates
/// the file back to the last commit boundary so a writer can append.
/// An `apply` error aborts replay and is returned as-is.
Result<WalReplayResult> ReplayWal(
    WalFile* file,
    const std::function<Status(uint64_t seqno,
                               std::span<const uint8_t> payload)>& apply,
    bool repair);

/// Appends framed records to a WalFile with group commit.
///
/// Usage: Append() one or more payloads (buffered in memory), then
/// Commit() to frame them together with a commit marker and write the
/// whole batch in a single file append — a crash can tear the batch but
/// never interleave it. Commit() then syncs per WalOptions.sync_mode.
/// Not thread-safe and deliberately unannotated: ViTriIndex owns the
/// writer behind its latch (wal_ is GUARDED_BY the index latch), so the
/// serialization is enforced one layer up where the capability lives.
/// See DESIGN.md §14.
class WalWriter {
 public:
  /// Takes ownership of `file`, appending after its current contents
  /// (run ReplayWal with repair first so the tail is a commit
  /// boundary). `base_seqno` is the last committed sequence number
  /// already in the log — usually WalReplayResult::commits.
  WalWriter(std::unique_ptr<WalFile> file, WalOptions options,
            uint64_t base_seqno);

  /// Buffers one data record for the next Commit(). Cheap; no I/O.
  Status Append(std::span<const uint8_t> payload);

  /// Writes buffered records + a commit marker as one file append, then
  /// syncs per policy. On success committed() advances; on failure the
  /// buffered batch is dropped (the file may hold a torn prefix of it —
  /// replay will discard it).
  Status Commit();

  /// Forces everything committed so far durable (group-commit drain).
  Status Sync();

  /// Last committed sequence number (monotonic, base_seqno + commits).
  uint64_t committed() const { return seqno_; }
  /// Highest sequence number covered by a successful sync. With
  /// kEveryCommit this tracks committed(); with kGrouped it lags.
  uint64_t durable() const { return durable_seqno_; }
  /// Commits made by this writer (excludes base_seqno).
  uint64_t commits() const { return seqno_ - base_seqno_; }
  uint64_t durable_commits() const {
    return durable_seqno_ <= base_seqno_ ? 0 : durable_seqno_ - base_seqno_;
  }
  uint64_t appended_bytes() const { return appended_bytes_; }
  const WalOptions& options() const { return options_; }
  WalFile* file() { return file_.get(); }

 private:
  std::unique_ptr<WalFile> file_;
  WalOptions options_;
  uint64_t base_seqno_;
  uint64_t seqno_;
  uint64_t durable_seqno_;
  std::vector<uint8_t> batch_;
  uint64_t batch_records_ = 0;
  uint64_t unsynced_commits_ = 0;
  uint64_t unsynced_bytes_ = 0;
  uint64_t appended_bytes_ = 0;
};

/// Frames one record (header + type + payload) onto `out`. Exposed for
/// tests that construct logs byte-by-byte.
void AppendWalRecord(uint8_t type, std::span<const uint8_t> payload,
                     std::vector<uint8_t>* out);

}  // namespace vitri::storage

#endif  // VITRI_STORAGE_WAL_H_
