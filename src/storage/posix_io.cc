#include "storage/posix_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>

#include "common/os.h"

namespace vitri::storage {

const char* FileSyncModeName(FileSyncMode mode) {
  switch (mode) {
    case FileSyncMode::kFsync:
      return "fsync";
    case FileSyncMode::kFdatasync:
      return "fdatasync";
    case FileSyncMode::kNone:
      return "none";
  }
  return "unknown";
}

Status ReadFullyAt(int fd, uint8_t* buf, size_t n, off_t offset) {
  while (n > 0) {
    const ssize_t r = ::pread(fd, buf, n, offset);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pread: ") + ErrnoString(errno));
    }
    if (r == 0) {
      return Status::IoError("pread: unexpected end of file");
    }
    buf += r;
    offset += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteFullyAt(int fd, const uint8_t* buf, size_t n, off_t offset) {
  while (n > 0) {
    const ssize_t r = ::pwrite(fd, buf, n, offset);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pwrite: ") + ErrnoString(errno));
    }
    if (r == 0) {
      return Status::IoError("pwrite: wrote no bytes");
    }
    buf += r;
    offset += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status SyncFd(int fd, FileSyncMode mode) {
  if (mode == FileSyncMode::kNone) return Status::OK();
  for (;;) {
    int rc;
    if (mode == FileSyncMode::kFdatasync) {
#if defined(__APPLE__)
      rc = ::fsync(fd);  // macOS has no fdatasync; fsync is the superset.
#else
      rc = ::fdatasync(fd);
#endif
    } else {
      rc = ::fsync(fd);
    }
    if (rc == 0) return Status::OK();
    if (errno == EINTR) continue;
    return Status::IoError(std::string(FileSyncModeName(mode)) + ": " +
                           ErrnoString(errno));
  }
}

Status SyncDir(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + ErrnoString(errno));
  }
  const Status s = SyncFd(fd, FileSyncMode::kFsync);
  ::close(fd);
  if (!s.ok()) {
    return Status::IoError("fsync(" + path + "): " + s.message());
  }
  return Status::OK();
}

void AdviseWillNeed(int fd, off_t offset, size_t len) {
#if defined(POSIX_FADV_WILLNEED)
  // Advisory by contract: ESPIPE/EBADF/ENOSYS all mean "no readahead",
  // which the demand read absorbs.
  (void)::posix_fadvise(fd, offset, static_cast<off_t>(len),
                        POSIX_FADV_WILLNEED);
#else
  (void)fd;
  (void)offset;
  (void)len;
#endif
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace vitri::storage
