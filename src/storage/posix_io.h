#ifndef VITRI_STORAGE_POSIX_IO_H_
#define VITRI_STORAGE_POSIX_IO_H_

#include <sys/types.h>

#include <cstdint>
#include <string>

#include "common/status.h"

namespace vitri::storage {

/// How a file-backed store turns "written" into "durable". The choice
/// trades safety for throughput: fdatasync skips flushing file metadata
/// (mtime etc.) that recovery never reads, and kNone leaves durability
/// to the OS writeback daemon — benchmarks only.
enum class FileSyncMode : uint8_t {
  kFsync = 0,
  kFdatasync = 1,
  kNone = 2,
};

const char* FileSyncModeName(FileSyncMode mode);

/// pread/pwrite may transfer fewer bytes than asked (signals, quotas,
/// disk-full for writes) or fail with EINTR without transferring
/// anything. Neither is corruption or a hard fault: these loop until the
/// full span moved, retrying EINTR, advancing past short transfers.
Status ReadFullyAt(int fd, uint8_t* buf, size_t n, off_t offset);
Status WriteFullyAt(int fd, const uint8_t* buf, size_t n, off_t offset);

/// Makes everything written to `fd` durable per `mode`, with the same
/// EINTR-retry discipline as the transfer paths. kNone returns OK
/// without touching the kernel.
Status SyncFd(int fd, FileSyncMode mode);

/// fsyncs the directory containing `path` (or `path` itself if it is a
/// directory). Required after rename()/creat() for the *name* to be
/// durable — syncing the file makes its bytes safe, not its dirent.
Status SyncDir(const std::string& path);

/// Advises the kernel that [offset, offset+len) of `fd` will be read
/// soon (posix_fadvise POSIX_FADV_WILLNEED), so readahead can start
/// before the pread arrives. Purely advisory: failures are swallowed
/// and platforms without posix_fadvise compile this to a no-op — a hint
/// that goes unheard costs correctness nothing.
void AdviseWillNeed(int fd, off_t offset, size_t len);

/// Directory component of `path` ("." when there is no slash). Helper
/// for the sync-file-then-sync-parent-dir dance.
std::string ParentDir(const std::string& path);

}  // namespace vitri::storage

#endif  // VITRI_STORAGE_POSIX_IO_H_
