#ifndef VITRI_STORAGE_PAGE_FOOTER_H_
#define VITRI_STORAGE_PAGE_FOOTER_H_

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/status.h"
#include "storage/page.h"

namespace vitri::storage {

/// Integrity footer occupying the last kPageFooterSize bytes of every
/// page written through the BufferPool:
///
///   [size-8] u32 crc32c   over (page id || bytes [0, size-8))
///   [size-4] u16 epoch    page format epoch (currently 1)
///   [size-2] u16 magic    0x5646 'VF' — distinguishes stamped pages
///
/// Seeding the checksum with the page id catches misdirected reads
/// (the right bytes from the wrong page). Pages whose magic does not
/// match are treated as unstamped — freshly allocated (all-zero) pages
/// and pages written by pre-footer builds — and are accepted without
/// verification.

inline constexpr uint16_t kPageFooterMagic = 0x5646;
inline constexpr uint16_t kPageFormatEpoch = 1;

/// Checksum of a page's payload region, seeded with its id.
inline uint32_t PageChecksum(const uint8_t* page, size_t page_size,
                             PageId id) {
  uint8_t id_bytes[4];
  EncodeU32(id_bytes, id);
  const uint32_t seed = Crc32c(id_bytes, sizeof(id_bytes));
  return Crc32cExtend(seed, page, page_size - kPageFooterSize);
}

/// Writes the footer into the page buffer. Requires
/// page_size > kPageFooterSize.
inline void StampPageFooter(uint8_t* page, size_t page_size, PageId id) {
  uint8_t* footer = page + page_size - kPageFooterSize;
  EncodeU32(footer, PageChecksum(page, page_size, id));
  EncodeU16(footer + 4, kPageFormatEpoch);
  EncodeU16(footer + 6, kPageFooterMagic);
}

/// True if the page carries a footer (magic matches).
inline bool PageIsStamped(const uint8_t* page, size_t page_size) {
  return DecodeU16(page + page_size - 2) == kPageFooterMagic;
}

/// Verifies a page read from the backing store. Unstamped pages pass
/// (see above); stamped pages with a wrong epoch or checksum fail with
/// Corruption naming the page id.
inline Status VerifyPageFooter(const uint8_t* page, size_t page_size,
                               PageId id) {
  if (!PageIsStamped(page, page_size)) return Status::OK();
  const uint8_t* footer = page + page_size - kPageFooterSize;
  const uint16_t epoch = DecodeU16(footer + 4);
  if (epoch != kPageFormatEpoch) {
    return Status::Corruption("page " + std::to_string(id) +
                              ": unsupported format epoch " +
                              std::to_string(epoch));
  }
  const uint32_t stored = DecodeU32(footer);
  const uint32_t actual = PageChecksum(page, page_size, id);
  if (stored != actual) {
    return Status::Corruption("page " + std::to_string(id) +
                              ": checksum mismatch");
  }
  return Status::OK();
}

}  // namespace vitri::storage

#endif  // VITRI_STORAGE_PAGE_FOOTER_H_
