#include "storage/replacer.h"

#include "common/check.h"

namespace vitri::storage {

ClockReplacer::ClockReplacer(size_t capacity) : entries_(capacity) {}

void ClockReplacer::Unpin(size_t slot) {
  VITRI_DCHECK(slot < entries_.size()) << "replacer slot out of range";
  Entry& e = entries_[slot];
  if (!e.candidate) {
    e.candidate = true;
    ++candidates_;
  }
  e.referenced = true;
}

void ClockReplacer::Pin(size_t slot) {
  VITRI_DCHECK(slot < entries_.size()) << "replacer slot out of range";
  Entry& e = entries_[slot];
  if (e.candidate) {
    e.candidate = false;
    e.referenced = false;
    --candidates_;
  }
}

bool ClockReplacer::Victim(size_t* slot) {
  if (candidates_ == 0) return false;
  // Every candidate's bit is cleared at most once before the hand comes
  // back around, so two passes bound the sweep.
  for (size_t step = 0; step < 2 * entries_.size(); ++step) {
    Entry& e = entries_[hand_];
    const size_t current = hand_;
    hand_ = (hand_ + 1) % entries_.size();
    if (!e.candidate) continue;
    if (e.referenced) {
      e.referenced = false;
      continue;
    }
    e.candidate = false;
    --candidates_;
    *slot = current;
    return true;
  }
  VITRI_CHECK(false) << "clock sweep failed to find one of "
                     << candidates_ << " candidates";
  return false;
}

bool ClockReplacer::Contains(size_t slot) const {
  VITRI_DCHECK(slot < entries_.size()) << "replacer slot out of range";
  return entries_[slot].candidate;
}

}  // namespace vitri::storage
