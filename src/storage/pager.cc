#include "storage/pager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/os.h"
#include "storage/page_footer.h"
#include "storage/posix_io.h"

namespace vitri::storage {

// --- MemPager ---------------------------------------------------------

MemPager::MemPager(size_t page_size) : Pager(page_size) {}

PageId MemPager::num_pages() const {
  MutexLock lock(mu_);
  return static_cast<PageId>(pages_.size());
}

Result<PageId> MemPager::Allocate() {
  MutexLock lock(mu_);
  if (pages_.size() >= kInvalidPageId) {
    return Status::ResourceExhausted("page id space exhausted");
  }
  pages_.emplace_back(page_size(), 0);
  return static_cast<PageId>(pages_.size() - 1);
}

uint8_t* MemPager::PageData(PageId id) {
  MutexLock lock(mu_);
  if (id >= pages_.size()) return nullptr;
  // Deque elements never move on push_back, so the pointer outlives the
  // latch; the caller copies outside it (same-page exclusion is the
  // caller's per the Pager contract).
  return pages_[id].data();
}

Status MemPager::Read(PageId id, uint8_t* out) {
  uint8_t* data = PageData(id);
  if (data == nullptr) {
    return Status::OutOfRange("read of unallocated page");
  }
  std::memcpy(out, data, page_size());
  return Status::OK();
}

Status MemPager::Write(PageId id, const uint8_t* src) {
  uint8_t* data = PageData(id);
  if (data == nullptr) {
    return Status::OutOfRange("write of unallocated page");
  }
  std::memcpy(data, src, page_size());
  return Status::OK();
}

Status MemPager::Sync() { return Status::OK(); }

// --- integrity scan ---------------------------------------------------

Result<PageVerifyReport> VerifyAllPages(Pager* pager) {
  PageVerifyReport report;
  std::vector<uint8_t> buf(pager->page_size());
  const PageId n = pager->num_pages();
  for (PageId id = 0; id < n; ++id) {
    ++report.pages_scanned;
    if (!pager->Read(id, buf.data()).ok()) {
      report.corrupt.push_back(id);
      continue;
    }
    if (!PageIsStamped(buf.data(), buf.size())) {
      ++report.unstamped;
      continue;
    }
    if (!VerifyPageFooter(buf.data(), buf.size(), id).ok()) {
      report.corrupt.push_back(id);
    }
  }
  return report;
}

// --- FilePager --------------------------------------------------------

FilePager::FilePager(int fd, size_t page_size, PageId num_pages,
                     FileSyncMode sync_mode)
    : Pager(page_size),
      fd_(fd),
      num_pages_(num_pages),
      sync_mode_(sync_mode) {}

FilePager::~FilePager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<FilePager>> FilePager::Open(const std::string& path,
                                                   size_t page_size,
                                                   FileSyncMode sync_mode) {
  if (page_size == 0) {
    return Status::InvalidArgument("page size must be positive");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + ErrnoString(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("fstat(" + path + "): " + ErrnoString(errno));
  }
  if (static_cast<size_t>(st.st_size) % page_size != 0) {
    ::close(fd);
    return Status::Corruption(path +
                              ": size is not a multiple of the page size");
  }
  const PageId pages =
      static_cast<PageId>(static_cast<size_t>(st.st_size) / page_size);
  return std::unique_ptr<FilePager>(
      new FilePager(fd, page_size, pages, sync_mode));
}

PageId FilePager::num_pages() const {
  return num_pages_.load(std::memory_order_acquire);
}

Result<PageId> FilePager::Allocate() {
  // Extension is serialized: the zero-fill write must land before the
  // new count is published, or a racing Read could see a valid id whose
  // bytes pread reports as EOF.
  MutexLock lock(alloc_mu_);
  const PageId current = num_pages_.load(std::memory_order_relaxed);
  if (current >= kInvalidPageId) {
    return Status::ResourceExhausted("page id space exhausted");
  }
  std::vector<uint8_t> zeros(page_size(), 0);
  const off_t offset =
      static_cast<off_t>(current) * static_cast<off_t>(page_size());
  VITRI_RETURN_IF_ERROR(
      WriteFullyAt(fd_, zeros.data(), page_size(), offset));
  num_pages_.store(current + 1, std::memory_order_release);
  return current;
}

Status FilePager::Read(PageId id, uint8_t* out) {
  if (id >= num_pages_.load(std::memory_order_acquire)) {
    return Status::OutOfRange("read of unallocated page");
  }
  const off_t offset =
      static_cast<off_t>(id) * static_cast<off_t>(page_size());
  return ReadFullyAt(fd_, out, page_size(), offset);
}

Status FilePager::Write(PageId id, const uint8_t* src) {
  if (id >= num_pages_.load(std::memory_order_acquire)) {
    return Status::OutOfRange("write of unallocated page");
  }
  const off_t offset =
      static_cast<off_t>(id) * static_cast<off_t>(page_size());
  return WriteFullyAt(fd_, src, page_size(), offset);
}

Status FilePager::Sync() { return SyncFd(fd_, sync_mode_); }

void FilePager::WillNeed(PageId first, size_t count) {
  const PageId pages = num_pages_.load(std::memory_order_acquire);
  if (first >= pages || count == 0) return;
  const size_t usable =
      std::min<size_t>(count, static_cast<size_t>(pages - first));
  const off_t offset =
      static_cast<off_t>(first) * static_cast<off_t>(page_size());
  AdviseWillNeed(fd_, offset, usable * page_size());
}

}  // namespace vitri::storage
