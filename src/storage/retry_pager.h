#ifndef VITRI_STORAGE_RETRY_PAGER_H_
#define VITRI_STORAGE_RETRY_PAGER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/result.h"
#include "common/status.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace vitri::storage {

/// Bounded-exponential-backoff retry budget for transient I/O errors.
struct RetryPolicy {
  /// Total attempts per operation (1 initial + max_attempts-1 retries).
  int max_attempts = 4;
  /// Sleep before the first retry; doubles (times `multiplier`) after
  /// each failed retry, capped at max_backoff.
  std::chrono::microseconds initial_backoff{100};
  double multiplier = 2.0;
  std::chrono::microseconds max_backoff{5000};
};

/// Decorator that retries *transient* failures — operations failing with
/// IoError — up to the policy's budget. Corruption is never retried: a
/// checksum mismatch is deterministic, and re-reading rotten bytes only
/// wastes the error budget. All other codes propagate immediately too.
class RetryingPager final : public Pager {
 public:
  explicit RetryingPager(std::unique_ptr<Pager> base,
                         RetryPolicy policy = RetryPolicy{});

  /// Total retries performed (not counting first attempts). Atomic:
  /// the sharded buffer pool drives this decorator from many threads.
  uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

  /// Optional IoStats to mirror the retry counter into (typically the
  /// buffer pool's, so QueryCosts/IoStats reporting sees retries).
  void set_stats_sink(IoStats* stats) { stats_sink_ = stats; }

  /// Test hook: replaces the backoff sleep (default:
  /// std::this_thread::sleep_for).
  void set_sleep_fn(std::function<void(std::chrono::microseconds)> fn) {
    sleep_fn_ = std::move(fn);
  }

  Pager* base() const { return base_.get(); }
  const RetryPolicy& policy() const { return policy_; }

  PageId num_pages() const override;
  Result<PageId> Allocate() override;
  Status Read(PageId id, uint8_t* out) override;
  Status Write(PageId id, const uint8_t* src) override;
  Status Sync() override;
  void WillNeed(PageId first, size_t count) override;

 private:
  Status RunWithRetries(const std::function<Status()>& op);

  std::unique_ptr<Pager> base_;
  RetryPolicy policy_;
  std::atomic<uint64_t> retries_{0};
  IoStats* stats_sink_ = nullptr;
  std::function<void(std::chrono::microseconds)> sleep_fn_;
};

}  // namespace vitri::storage

#endif  // VITRI_STORAGE_RETRY_PAGER_H_
