#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/check.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "storage/page_footer.h"

namespace vitri::storage {

void PageRef::MarkDirty() {
  VITRI_DCHECK(valid()) << "MarkDirty on a released PageRef";
  // Dirtiness is latched at unpin time; remember it locally.
  dirty_latch_ = true;
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_, dirty_latch_);
    pool_ = nullptr;
    data_ = nullptr;
    id_ = kInvalidPageId;
  }
}

namespace {

size_t ResolveShardCount(size_t capacity, const BufferPoolOptions& options) {
  size_t n = options.shards;
  if (n == 0) {
    // Env override applies to *auto* only: code that pins an explicit
    // count did so for a reason (tests proving shard-local properties).
    if (const char* env = std::getenv("VITRI_POOL_SHARDS")) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0' && v > 0) n = static_cast<size_t>(v);
    }
  }
  if (n == 0) n = std::clamp<size_t>(capacity / 8, 1, 8);
  return std::clamp<size_t>(n, 1, capacity);
}

Status PoolInvariantViolation(const std::string& what) {
  return Status::Internal("buffer pool invariant violated: " + what);
}

}  // namespace

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : BufferPool(pager, capacity, BufferPoolOptions{}) {}

BufferPool::BufferPool(Pager* pager, size_t capacity,
                       const BufferPoolOptions& options)
    : pager_(pager),
      capacity_(capacity == 0 ? 1 : capacity),
      options_(options) {
  VITRI_CHECK(pager->page_size() > kPageFooterSize)
      << "page size must leave room for the integrity footer";
  const size_t num_shards = ResolveShardCount(capacity_, options_);
  shards_.reserve(num_shards);
  auto& registry = metrics::Registry::Instance();
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    // Spread the frames as evenly as integer division allows.
    const size_t frames =
        capacity_ / num_shards + (i < capacity_ % num_shards ? 1 : 0);
    shard->frames.resize(frames);
    for (Frame& f : shard->frames) f.data.resize(pager_->page_size());
    shard->free_list.reserve(frames);
    // Reversed so pop_back hands out slot 0 first.
    for (size_t slot = frames; slot > 0; --slot) {
      shard->free_list.push_back(slot - 1);
    }
    shard->replacer = ClockReplacer(frames);
    const std::string prefix = "buffer_pool.shard." + std::to_string(i) + ".";
    shard->metrics.fetches = registry.GetCounter(prefix + "fetches");
    shard->metrics.hits = registry.GetCounter(prefix + "hits");
    shard->metrics.evictions = registry.GetCounter(prefix + "evictions");
    shard->metrics.prefetch_issued =
        registry.GetCounter(prefix + "prefetch_issued");
    shard->metrics.prefetch_hits =
        registry.GetCounter(prefix + "prefetch_hits");
    shards_.push_back(std::move(shard));
  }
  if (options_.prefetch_threads > 0) {
    prefetch_pool_ = std::make_unique<ThreadPool>(options_.prefetch_threads);
  }
}

BufferPool::~BufferPool() {
  DrainPrefetches();
  prefetch_pool_.reset();  // Joins the workers; no loads in flight after.
  const Status s = FlushAll();
  if (!s.ok()) {
    VITRI_LOG(kError) << "BufferPool flush on destruction failed: "
                      << s.ToString();
  }
  // The resident gauge is process-wide across pools; retire our frames.
  VITRI_METRIC_GAUGE("storage.pool.resident")
      ->Add(-static_cast<int64_t>(resident()));
}

Result<PageRef> BufferPool::Fetch(PageId id) {
  Shard& s = ShardFor(id);
  ++s.stats.logical_reads;
  s.metrics.fetches->Increment();
  // Registry counters are cumulative process metrics, deliberately
  // separate from the IoStats: validators save/restore IoStats, and
  // queries report IoStats deltas, while these only ever count up.
  VITRI_METRIC_COUNTER("storage.pool.fetches")->Increment();
  VITRI_ASSIGN_OR_RETURN(uint8_t * data, LoadPage(s, id, /*demand=*/true));
  return PageRef(this, id, data);
}

Result<PageRef> BufferPool::New() {
  // The pager is thread-safe; no pool latch is needed around Allocate.
  VITRI_ASSIGN_OR_RETURN(const PageId id, pager_->Allocate());
  Shard& s = ShardFor(id);
  ++s.stats.allocations;
  VITRI_METRIC_COUNTER("storage.pool.allocations")->Increment();
  VITRI_ASSIGN_OR_RETURN(const size_t slot, ClaimSlot(s));
  Frame& f = s.frames[slot];
  MutexLock lock(s.latch);
  // Freshly allocated ids are unpublished: no concurrent fetch, load, or
  // eviction can name this page yet.
  VITRI_DCHECK(s.table.find(id) == s.table.end())
      << "freshly allocated page " << id << " already had a frame";
  f.id = id;
  f.pin_count = 1;
  f.dirty = true;
  f.loading = false;
  f.prefetched = false;
  std::fill(f.data.begin(), f.data.end(), 0);
  s.table.emplace(id, slot);
  VITRI_METRIC_GAUGE("storage.pool.resident")->Add(1);
  VITRI_DCHECK_OK(ValidateShardLocked(s));
  return PageRef(this, id, f.data.data());
}

void BufferPool::Prefetch(PageId id) {
  if (options_.readahead_pages == 0 || id == kInvalidPageId) return;
  Shard& s = ShardFor(id);
  {
    MutexLock lock(s.latch);
    if (s.table.find(id) != s.table.end()) return;  // Already resident.
  }
  pager_->WillNeed(id, options_.readahead_pages);
  ++s.stats.prefetch_issued;
  s.metrics.prefetch_issued->Increment();
  if (prefetch_pool_ == nullptr) return;
  {
    MutexLock lock(prefetch_mu_);
    ++prefetch_outstanding_;
  }
  prefetch_pool_->Submit([this, id] {
    PrefetchLoad(id);
    MutexLock lock(prefetch_mu_);
    if (--prefetch_outstanding_ == 0) prefetch_cv_.NotifyAll();
  });
}

void BufferPool::PrefetchLoad(PageId id) {
  // Best-effort by design: a full shard, an I/O error, or a checksum
  // mismatch just means the demand fetch does the work (and surfaces
  // the error, if it persists) — a prefetch must never fail a query.
  (void)LoadPage(ShardFor(id), id, /*demand=*/false);
}

void BufferPool::DrainPrefetches() {
  if (prefetch_pool_ == nullptr) return;
  MutexLock lock(prefetch_mu_);
  while (prefetch_outstanding_ > 0) prefetch_cv_.Wait(lock);
}

Result<uint8_t*> BufferPool::LoadPage(Shard& s, PageId id, bool demand) {
  for (;;) {
    {
      MutexLock lock(s.latch);
      for (;;) {
        auto it = s.table.find(id);
        if (it != s.table.end() && s.frames[it->second].loading) {
          // Another thread is filling the frame; its bytes are not
          // ours to look at yet.
          s.cv.Wait(lock);
          continue;
        }
        if (it == s.table.end() && s.evicting.count(id) > 0) {
          // Mid-writeback: re-reading now would resurrect the stale
          // on-disk version of the page. Wait for the write to land.
          s.cv.Wait(lock);
          continue;
        }
        break;
      }
      auto it = s.table.find(id);
      if (it != s.table.end()) {
        Frame& f = s.frames[it->second];
        if (!demand) return f.data.data();  // Resident; prefetch is done.
        ++s.stats.cache_hits;
        s.metrics.hits->Increment();
        VITRI_METRIC_COUNTER("storage.pool.hits")->Increment();
        if (f.prefetched) {
          f.prefetched = false;
          ++s.stats.prefetch_hits;
          s.metrics.prefetch_hits->Increment();
        }
        if (f.pin_count == 0) s.replacer.Pin(it->second);
        ++f.pin_count;
        return f.data.data();
      }
    }

    // Miss. Claim a slot (ClaimSlot may drop into write-back I/O).
    VITRI_ASSIGN_OR_RETURN(const size_t slot, ClaimSlot(s));
    Frame& f = s.frames[slot];
    {
      MutexLock lock(s.latch);
      if (s.table.count(id) > 0 || s.evicting.count(id) > 0) {
        // Raced with another loader (or a fresh evictor) of the same
        // page while unlatched; hand the slot back and resolve via the
        // hit/wait path above.
        s.free_list.push_back(slot);
        continue;
      }
      f.id = id;
      f.pin_count = 1;  // The load itself holds a pin, demand or not.
      f.dirty = false;
      f.loading = true;
      f.prefetched = false;
      s.table.emplace(id, slot);
      ++s.stats.physical_reads;
      if (demand) VITRI_METRIC_COUNTER("storage.pool.misses")->Increment();
    }

    // The transfer runs unlatched; `loading` marks the bytes as ours.
    const Status read = pager_->Read(id, f.data.data());
    const Status status =
        read.ok() ? VerifyPageFooter(f.data.data(), pager_->page_size(), id)
                  : read;

    MutexLock lock(s.latch);
    f.loading = false;
    if (!status.ok()) {
      if (read.ok()) {
        ++s.stats.checksum_failures;
        VITRI_METRIC_COUNTER("storage.pool.checksum_failures")->Increment();
        s.corrupt.insert(id);
      }
      s.table.erase(id);
      f.id = kInvalidPageId;
      f.pin_count = 0;
      s.free_list.push_back(slot);
      s.cv.NotifyAll();
      return status;
    }
    VITRI_METRIC_GAUGE("storage.pool.resident")->Add(1);
    if (!demand) {
      f.pin_count = 0;
      f.prefetched = true;
      s.replacer.Unpin(slot);
    }
    s.cv.NotifyAll();
    VITRI_DCHECK_OK(ValidateShardLocked(s));
    return f.data.data();
  }
}

Result<size_t> BufferPool::ClaimSlot(Shard& s) {
  size_t victim = 0;
  PageId victim_id = kInvalidPageId;
  {
    MutexLock lock(s.latch);
    if (!s.free_list.empty()) {
      const size_t slot = s.free_list.back();
      s.free_list.pop_back();
      return slot;
    }
    if (!s.replacer.Victim(&victim)) {
      return Status::ResourceExhausted(
          "buffer pool full and every frame is pinned");
    }
    Frame& vf = s.frames[victim];
    victim_id = vf.id;
    s.table.erase(victim_id);
    if (!vf.dirty) {
      vf.id = kInvalidPageId;
      vf.prefetched = false;
      ++s.stats.evictions;
      s.metrics.evictions->Increment();
      VITRI_METRIC_COUNTER("storage.pool.evictions")->Increment();
      VITRI_METRIC_GAUGE("storage.pool.resident")->Add(-1);
      return victim;
    }
    s.evicting.insert(victim_id);
  }

  // Dirty victim: stamp and write outside the latch. The frame is in no
  // structure and the page id is parked in `evicting`, so this thread
  // owns both until the relatch below.
  Frame& vf = s.frames[victim];
  StampPageFooter(vf.data.data(), pager_->page_size(), victim_id);
  ++s.stats.physical_writes;
  VITRI_METRIC_COUNTER("storage.pool.writebacks")->Increment();
  const Status written = pager_->Write(victim_id, vf.data.data());

  MutexLock lock(s.latch);
  s.evicting.erase(victim_id);
  s.cv.NotifyAll();
  if (!written.ok()) {
    // The frame holds the only up-to-date copy of the page; reinstall
    // it unpinned-dirty rather than lose the write.
    s.table.emplace(victim_id, victim);
    s.replacer.Unpin(victim);
    return written;
  }
  vf.dirty = false;
  vf.id = kInvalidPageId;
  vf.prefetched = false;
  ++s.stats.evictions;
  s.metrics.evictions->Increment();
  VITRI_METRIC_COUNTER("storage.pool.evictions")->Increment();
  VITRI_METRIC_GAUGE("storage.pool.resident")->Add(-1);
  return victim;
}

Status BufferPool::FlushAll() {
  for (auto& shard : shards_) {
    Shard& s = *shard;
    MutexLock lock(s.latch);
    for (auto& [id, slot] : s.table) {
      VITRI_RETURN_IF_ERROR(WriteBackLocked(s, s.frames[slot]));
    }
  }
  if (!options_.sync_on_flush) return Status::OK();
  VITRI_METRIC_COUNTER("storage.pool.syncs")->Increment();
  return pager_->Sync();
}

Status BufferPool::EvictAll() {
  DrainPrefetches();
  for (auto& shard : shards_) {
    Shard& s = *shard;
    MutexLock lock(s.latch);
    for (auto it = s.table.begin(); it != s.table.end();) {
      const size_t slot = it->second;
      Frame& f = s.frames[slot];
      if (f.pin_count > 0) {
        ++it;
        continue;
      }
      VITRI_RETURN_IF_ERROR(WriteBackLocked(s, f));
      s.replacer.Pin(slot);
      f.id = kInvalidPageId;
      f.prefetched = false;
      s.free_list.push_back(slot);
      it = s.table.erase(it);
      VITRI_METRIC_GAUGE("storage.pool.resident")->Add(-1);
    }
  }
  return Status::OK();
}

void BufferPool::Unpin(PageId id, bool dirty) {
  Shard& s = ShardFor(id);
  MutexLock lock(s.latch);
  auto it = s.table.find(id);
  VITRI_CHECK(it != s.table.end()) << "unpin of unknown page " << id;
  Frame& f = s.frames[it->second];
  VITRI_CHECK(f.pin_count > 0) << "unpin of unpinned page " << id;
  if (dirty) f.dirty = true;
  if (--f.pin_count == 0) s.replacer.Unpin(it->second);
  VITRI_DCHECK_OK(ValidateShardLocked(s));
}

Status BufferPool::WriteBackLocked(Shard& s, Frame& frame) {
  if (!frame.dirty) return Status::OK();
  ++s.stats.physical_writes;
  VITRI_METRIC_COUNTER("storage.pool.writebacks")->Increment();
  StampPageFooter(frame.data.data(), pager_->page_size(), frame.id);
  VITRI_RETURN_IF_ERROR(pager_->Write(frame.id, frame.data.data()));
  frame.dirty = false;
  return Status::OK();
}

IoSnapshot BufferPool::StatsSnapshot() const {
  IoSnapshot total = external_stats_.Snapshot();
  for (const auto& shard : shards_) total = total + shard->stats.Snapshot();
  return total;
}

IoStats BufferPool::stats() const {
  IoStats out;
  RestoreIoStats(&out, StatsSnapshot());
  return out;
}

std::vector<IoSnapshot> BufferPool::ShardSnapshots() const {
  std::vector<IoSnapshot> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->stats.Snapshot());
  return out;
}

BufferPool::StatsSave BufferPool::SaveStats() const {
  StatsSave save;
  save.shards = ShardSnapshots();
  save.external = external_stats_.Snapshot();
  return save;
}

void BufferPool::RestoreStats(const StatsSave& saved) {
  VITRI_CHECK(saved.shards.size() == shards_.size())
      << "stats save from a pool with a different shard count";
  for (size_t i = 0; i < shards_.size(); ++i) {
    RestoreIoStats(&shards_[i]->stats, saved.shards[i]);
  }
  RestoreIoStats(&external_stats_, saved.external);
}

std::set<PageId> BufferPool::corrupt_pages() const {
  std::set<PageId> out;
  for (const auto& shard : shards_) {
    const Shard& s = *shard;
    MutexLock lock(s.latch);
    out.insert(s.corrupt.begin(), s.corrupt.end());
  }
  return out;
}

void BufferPool::ClearCorruptPages() {
  for (auto& shard : shards_) {
    Shard& s = *shard;
    MutexLock lock(s.latch);
    s.corrupt.clear();
  }
}

size_t BufferPool::resident() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    const Shard& s = *shard;
    MutexLock lock(s.latch);
    total += s.table.size();
  }
  return total;
}

Status BufferPool::ValidateInvariants() const {
  if (capacity_ < 1) {
    return PoolInvariantViolation("capacity must be >= 1");
  }
  size_t frames_total = 0;
  for (const auto& shard : shards_) {
    const Shard& s = *shard;
    frames_total += s.frames.size();
    MutexLock lock(s.latch);
    VITRI_RETURN_IF_ERROR(ValidateShardLocked(s));
  }
  if (frames_total != capacity_) {
    return PoolInvariantViolation(
        "shard frame counts sum to " + std::to_string(frames_total) +
        ", not the capacity " + std::to_string(capacity_));
  }
  const IoSnapshot totals = StatsSnapshot();
  if (totals.cache_hits > totals.logical_reads) {
    return PoolInvariantViolation("more cache hits than logical reads");
  }
  return Status::OK();
}

Status BufferPool::ValidateShardLocked(const Shard& s) const {
  const std::string where = "shard " + std::to_string(s.index) + ": ";
  if (s.frames.empty()) {
    return PoolInvariantViolation(where + "owns no frames");
  }
  if (s.table.size() > s.frames.size()) {
    return PoolInvariantViolation(
        where + "resident pages (" + std::to_string(s.table.size()) +
        ") exceed the shard's frames (" + std::to_string(s.frames.size()) +
        ")");
  }

  // Each slot sits in at most one structure. (A slot in neither is a
  // frame mid-claim by an in-flight operation; exactly zero of those
  // exist under the validator's exclusive-access contract, but the
  // DCHECK validations that run inside concurrent operations must
  // tolerate them.)
  std::vector<char> seen(s.frames.size(), 0);
  size_t unpinned_resident = 0;
  for (const auto& [id, slot] : s.table) {
    if (slot >= s.frames.size()) {
      return PoolInvariantViolation(where + "page " + std::to_string(id) +
                                    " maps to slot " + std::to_string(slot) +
                                    " beyond the frame array");
    }
    if (seen[slot]++) {
      return PoolInvariantViolation(where + "slot " + std::to_string(slot) +
                                    " is mapped by two pages");
    }
    const Frame& f = s.frames[slot];
    if (f.id != id) {
      return PoolInvariantViolation(
          where + "frame keyed " + std::to_string(id) +
          " believes it is page " + std::to_string(f.id));
    }
    if (id % shards_.size() != s.index) {
      return PoolInvariantViolation(
          "page " + std::to_string(id) + " is resident in shard " +
          std::to_string(s.index) + " but its home shard is " +
          std::to_string(id % shards_.size()));
    }
    if (f.data.size() != pager_->page_size()) {
      return PoolInvariantViolation(where + "page " + std::to_string(id) +
                                    " buffer size mismatch");
    }
    if (id >= pager_->num_pages()) {
      return PoolInvariantViolation(where + "page " + std::to_string(id) +
                                    " is beyond the pager's extent");
    }
    if (f.pin_count < 0) {
      return PoolInvariantViolation(where + "page " + std::to_string(id) +
                                    " has a negative pin count");
    }
    if (f.pin_count == 0) {
      ++unpinned_resident;
      if (!s.replacer.Contains(slot)) {
        return PoolInvariantViolation(
            where + "unpinned page " + std::to_string(id) +
            " is missing from the replacer");
      }
    } else if (s.replacer.Contains(slot)) {
      return PoolInvariantViolation(
          "replacer holds a candidate entry for pinned page " +
          std::to_string(id) + " in shard " + std::to_string(s.index));
    }
  }

  for (const size_t slot : s.free_list) {
    if (slot >= s.frames.size()) {
      return PoolInvariantViolation(where + "free slot " +
                                    std::to_string(slot) +
                                    " beyond the frame array");
    }
    if (seen[slot]++) {
      return PoolInvariantViolation(where + "slot " + std::to_string(slot) +
                                    " is both free and mapped");
    }
    const Frame& f = s.frames[slot];
    if (f.id != kInvalidPageId || f.pin_count != 0 || f.dirty) {
      return PoolInvariantViolation(where + "free slot " +
                                    std::to_string(slot) +
                                    " holds a live frame");
    }
    if (s.replacer.Contains(slot)) {
      return PoolInvariantViolation(where + "free slot " +
                                    std::to_string(slot) +
                                    " is a replacer candidate");
    }
  }

  if (s.replacer.size() != unpinned_resident) {
    return PoolInvariantViolation(
        where + "replacer tracks " + std::to_string(s.replacer.size()) +
        " candidates but " + std::to_string(unpinned_resident) +
        " resident frames are unpinned");
  }

  if (s.stats.cache_hits.load(std::memory_order_relaxed) >
      s.stats.logical_reads.load(std::memory_order_relaxed)) {
    return PoolInvariantViolation(where +
                                  "more cache hits than logical reads");
  }
  return Status::OK();
}

}  // namespace vitri::storage
