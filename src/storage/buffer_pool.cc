#include "storage/buffer_pool.h"

#include <cassert>

#include "common/logging.h"
#include "storage/page_footer.h"

namespace vitri::storage {

void PageRef::MarkDirty() {
  assert(valid());
  // Dirtiness is latched at unpin time; remember it locally.
  dirty_latch_ = true;
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_, dirty_latch_);
    pool_ = nullptr;
    data_ = nullptr;
    id_ = kInvalidPageId;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : pager_(pager), capacity_(capacity == 0 ? 1 : capacity) {
  assert(pager->page_size() > kPageFooterSize &&
         "page size must leave room for the integrity footer");
}

BufferPool::~BufferPool() {
  const Status s = FlushAll();
  if (!s.ok()) {
    VITRI_LOG(kError) << "BufferPool flush on destruction failed: "
                      << s.ToString();
  }
}

Result<PageRef> BufferPool::Fetch(PageId id) {
  ++stats_.logical_reads;
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++stats_.cache_hits;
    Frame& frame = it->second;
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return PageRef(this, id, frame.data.data());
  }

  VITRI_RETURN_IF_ERROR(EvictOneIfFull());

  Frame frame;
  frame.id = id;
  frame.data.resize(pager_->page_size());
  ++stats_.physical_reads;
  VITRI_RETURN_IF_ERROR(pager_->Read(id, frame.data.data()));
  const Status integrity =
      VerifyPageFooter(frame.data.data(), pager_->page_size(), id);
  if (!integrity.ok()) {
    ++stats_.checksum_failures;
    corrupt_pages_.insert(id);
    return integrity;
  }
  frame.pin_count = 1;
  auto [pos, inserted] = frames_.emplace(id, std::move(frame));
  assert(inserted);
  return PageRef(this, id, pos->second.data.data());
}

Result<PageRef> BufferPool::New() {
  VITRI_ASSIGN_OR_RETURN(PageId id, pager_->Allocate());
  ++stats_.allocations;
  VITRI_RETURN_IF_ERROR(EvictOneIfFull());

  Frame frame;
  frame.id = id;
  frame.data.assign(pager_->page_size(), 0);
  frame.pin_count = 1;
  frame.dirty = true;
  auto [pos, inserted] = frames_.emplace(id, std::move(frame));
  assert(inserted);
  return PageRef(this, id, pos->second.data.data());
}

Status BufferPool::FlushAll() {
  for (auto& [id, frame] : frames_) {
    VITRI_RETURN_IF_ERROR(WriteBack(frame));
  }
  return pager_->Sync();
}

Status BufferPool::EvictAll() {
  for (auto it = frames_.begin(); it != frames_.end();) {
    Frame& frame = it->second;
    if (frame.pin_count > 0) {
      ++it;
      continue;
    }
    VITRI_RETURN_IF_ERROR(WriteBack(frame));
    if (frame.in_lru) lru_.erase(frame.lru_pos);
    it = frames_.erase(it);
  }
  return Status::OK();
}

void BufferPool::Unpin(PageId id, bool dirty) {
  auto it = frames_.find(id);
  assert(it != frames_.end());
  Frame& frame = it->second;
  assert(frame.pin_count > 0);
  if (dirty) frame.dirty = true;
  if (--frame.pin_count == 0) {
    lru_.push_back(id);
    frame.lru_pos = std::prev(lru_.end());
    frame.in_lru = true;
  }
}

Status BufferPool::EvictOneIfFull() {
  if (frames_.size() < capacity_) return Status::OK();
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool full and every frame is pinned");
  }
  const PageId victim = lru_.front();
  lru_.pop_front();
  auto it = frames_.find(victim);
  assert(it != frames_.end());
  VITRI_RETURN_IF_ERROR(WriteBack(it->second));
  frames_.erase(it);
  return Status::OK();
}

Status BufferPool::WriteBack(Frame& frame) {
  if (!frame.dirty) return Status::OK();
  ++stats_.physical_writes;
  StampPageFooter(frame.data.data(), pager_->page_size(), frame.id);
  VITRI_RETURN_IF_ERROR(pager_->Write(frame.id, frame.data.data()));
  frame.dirty = false;
  return Status::OK();
}

}  // namespace vitri::storage
