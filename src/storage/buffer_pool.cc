#include "storage/buffer_pool.h"

#include <string>
#include <unordered_set>

#include "common/check.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "storage/page_footer.h"

namespace vitri::storage {

void PageRef::MarkDirty() {
  VITRI_DCHECK(valid()) << "MarkDirty on a released PageRef";
  // Dirtiness is latched at unpin time; remember it locally.
  dirty_latch_ = true;
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_, dirty_latch_);
    pool_ = nullptr;
    data_ = nullptr;
    id_ = kInvalidPageId;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : BufferPool(pager, capacity, BufferPoolOptions{}) {}

BufferPool::BufferPool(Pager* pager, size_t capacity,
                       const BufferPoolOptions& options)
    : pager_(pager),
      capacity_(capacity == 0 ? 1 : capacity),
      options_(options) {
  VITRI_CHECK(pager->page_size() > kPageFooterSize)
      << "page size must leave room for the integrity footer";
}

BufferPool::~BufferPool() {
  const Status s = FlushAll();
  if (!s.ok()) {
    VITRI_LOG(kError) << "BufferPool flush on destruction failed: "
                      << s.ToString();
  }
}

Result<PageRef> BufferPool::Fetch(PageId id) {
  MutexLock lock(latch_);
  ++stats_.logical_reads;
  // Registry counters are cumulative process metrics, deliberately
  // separate from stats_: validators save/restore stats_, and queries
  // report stats_ deltas, while these only ever count up.
  VITRI_METRIC_COUNTER("storage.pool.fetches")->Increment();
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++stats_.cache_hits;
    VITRI_METRIC_COUNTER("storage.pool.hits")->Increment();
    Frame& frame = it->second;
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return PageRef(this, id, frame.data.data());
  }

  VITRI_RETURN_IF_ERROR(EvictOneIfFullLocked());

  Frame frame;
  frame.id = id;
  frame.data.resize(pager_->page_size());
  ++stats_.physical_reads;
  VITRI_METRIC_COUNTER("storage.pool.misses")->Increment();
  VITRI_RETURN_IF_ERROR(pager_->Read(id, frame.data.data()));
  const Status integrity =
      VerifyPageFooter(frame.data.data(), pager_->page_size(), id);
  if (!integrity.ok()) {
    ++stats_.checksum_failures;
    VITRI_METRIC_COUNTER("storage.pool.checksum_failures")->Increment();
    corrupt_pages_.insert(id);
    return integrity;
  }
  frame.pin_count = 1;
  auto [pos, inserted] = frames_.emplace(id, std::move(frame));
  VITRI_DCHECK(inserted) << "page " << id << " already had a frame";
  VITRI_METRIC_GAUGE("storage.pool.resident")
      ->Set(static_cast<int64_t>(frames_.size()));
  VITRI_DCHECK_OK(ValidateInvariantsLocked());
  return PageRef(this, id, pos->second.data.data());
}

Result<PageRef> BufferPool::New() {
  MutexLock lock(latch_);
  VITRI_ASSIGN_OR_RETURN(PageId id, pager_->Allocate());
  ++stats_.allocations;
  VITRI_METRIC_COUNTER("storage.pool.allocations")->Increment();
  VITRI_RETURN_IF_ERROR(EvictOneIfFullLocked());

  Frame frame;
  frame.id = id;
  frame.data.assign(pager_->page_size(), 0);
  frame.pin_count = 1;
  frame.dirty = true;
  auto [pos, inserted] = frames_.emplace(id, std::move(frame));
  VITRI_DCHECK(inserted) << "freshly allocated page " << id
                         << " already had a frame";
  VITRI_METRIC_GAUGE("storage.pool.resident")
      ->Set(static_cast<int64_t>(frames_.size()));
  VITRI_DCHECK_OK(ValidateInvariantsLocked());
  return PageRef(this, id, pos->second.data.data());
}

Status BufferPool::FlushAll() {
  MutexLock lock(latch_);
  for (auto& [id, frame] : frames_) {
    VITRI_RETURN_IF_ERROR(WriteBackLocked(frame));
  }
  if (!options_.sync_on_flush) return Status::OK();
  VITRI_METRIC_COUNTER("storage.pool.syncs")->Increment();
  return pager_->Sync();
}

Status BufferPool::EvictAll() {
  MutexLock lock(latch_);
  for (auto it = frames_.begin(); it != frames_.end();) {
    Frame& frame = it->second;
    if (frame.pin_count > 0) {
      ++it;
      continue;
    }
    VITRI_RETURN_IF_ERROR(WriteBackLocked(frame));
    if (frame.in_lru) lru_.erase(frame.lru_pos);
    it = frames_.erase(it);
  }
  return Status::OK();
}

void BufferPool::Unpin(PageId id, bool dirty) {
  MutexLock lock(latch_);
  auto it = frames_.find(id);
  VITRI_CHECK(it != frames_.end()) << "unpin of unknown page " << id;
  Frame& frame = it->second;
  VITRI_CHECK(frame.pin_count > 0) << "unpin of unpinned page " << id;
  if (dirty) frame.dirty = true;
  if (--frame.pin_count == 0) {
    lru_.push_back(id);
    frame.lru_pos = std::prev(lru_.end());
    frame.in_lru = true;
  }
  VITRI_DCHECK_OK(ValidateInvariantsLocked());
}

Status BufferPool::EvictOneIfFullLocked() {
  if (frames_.size() < capacity_) return Status::OK();
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool full and every frame is pinned");
  }
  const PageId victim = lru_.front();
  lru_.pop_front();
  auto it = frames_.find(victim);
  VITRI_CHECK(it != frames_.end()) << "LRU victim " << victim
                                   << " has no resident frame";
  VITRI_RETURN_IF_ERROR(WriteBackLocked(it->second));
  frames_.erase(it);
  VITRI_METRIC_COUNTER("storage.pool.evictions")->Increment();
  VITRI_METRIC_GAUGE("storage.pool.resident")
      ->Set(static_cast<int64_t>(frames_.size()));
  return Status::OK();
}

namespace {

Status PoolInvariantViolation(const std::string& what) {
  return Status::Internal("buffer pool invariant violated: " + what);
}

}  // namespace

Status BufferPool::ValidateInvariants() const {
  MutexLock lock(latch_);
  return ValidateInvariantsLocked();
}

Status BufferPool::ValidateInvariantsLocked() const {
  if (capacity_ < 1) {
    return PoolInvariantViolation("capacity must be >= 1");
  }
  if (frames_.size() > capacity_) {
    return PoolInvariantViolation(
        "resident frames (" + std::to_string(frames_.size()) +
        ") exceed capacity (" + std::to_string(capacity_) + ")");
  }

  // Every LRU entry must name a distinct, resident, unpinned frame whose
  // back-pointer is exactly this list position.
  std::unordered_set<PageId> on_lru;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (!on_lru.insert(*it).second) {
      return PoolInvariantViolation("page " + std::to_string(*it) +
                                    " appears twice on the LRU list");
    }
    auto frame_it = frames_.find(*it);
    if (frame_it == frames_.end()) {
      return PoolInvariantViolation("LRU entry for page " +
                                    std::to_string(*it) +
                                    " has no resident frame");
    }
    const Frame& frame = frame_it->second;
    if (!frame.in_lru || frame.lru_pos != it) {
      return PoolInvariantViolation("page " + std::to_string(*it) +
                                    " has a desynced LRU back-pointer");
    }
    if (frame.pin_count != 0) {
      return PoolInvariantViolation("pinned page " + std::to_string(*it) +
                                    " sits on the LRU list");
    }
  }

  size_t unpinned = 0;
  for (const auto& [id, frame] : frames_) {
    if (frame.id != id) {
      return PoolInvariantViolation(
          "frame keyed " + std::to_string(id) + " believes it is page " +
          std::to_string(frame.id));
    }
    if (frame.data.size() != pager_->page_size()) {
      return PoolInvariantViolation("page " + std::to_string(id) +
                                    " buffer size mismatch");
    }
    if (id >= pager_->num_pages()) {
      return PoolInvariantViolation("page " + std::to_string(id) +
                                    " is beyond the pager's extent");
    }
    if (frame.pin_count < 0) {
      return PoolInvariantViolation("page " + std::to_string(id) +
                                    " has a negative pin count");
    }
    if (frame.pin_count == 0) {
      ++unpinned;
      if (!frame.in_lru) {
        return PoolInvariantViolation("unpinned page " + std::to_string(id) +
                                      " is missing from the LRU list");
      }
    } else if (frame.in_lru) {
      return PoolInvariantViolation("pinned page " + std::to_string(id) +
                                    " is flagged as on the LRU list");
    }
  }
  if (unpinned != lru_.size()) {
    return PoolInvariantViolation(
        "LRU list length " + std::to_string(lru_.size()) +
        " disagrees with " + std::to_string(unpinned) + " unpinned frames");
  }

  if (stats_.cache_hits.load(std::memory_order_relaxed) >
      stats_.logical_reads.load(std::memory_order_relaxed)) {
    return PoolInvariantViolation("more cache hits than logical reads");
  }
  return Status::OK();
}

Status BufferPool::WriteBackLocked(Frame& frame) {
  if (!frame.dirty) return Status::OK();
  ++stats_.physical_writes;
  VITRI_METRIC_COUNTER("storage.pool.writebacks")->Increment();
  StampPageFooter(frame.data.data(), pager_->page_size(), frame.id);
  VITRI_RETURN_IF_ERROR(pager_->Write(frame.id, frame.data.data()));
  frame.dirty = false;
  return Status::OK();
}

}  // namespace vitri::storage
