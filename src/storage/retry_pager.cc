#include "storage/retry_pager.h"

#include <algorithm>
#include <thread>

namespace vitri::storage {

RetryingPager::RetryingPager(std::unique_ptr<Pager> base, RetryPolicy policy)
    : Pager(base->page_size()),
      base_(std::move(base)),
      policy_(policy),
      sleep_fn_([](std::chrono::microseconds d) {
        std::this_thread::sleep_for(d);
      }) {}

Status RetryingPager::RunWithRetries(const std::function<Status()>& op) {
  std::chrono::microseconds backoff = policy_.initial_backoff;
  Status status = op();
  for (int attempt = 1;
       attempt < policy_.max_attempts && status.IsIoError(); ++attempt) {
    if (backoff.count() > 0) sleep_fn_(backoff);
    backoff = std::min(
        policy_.max_backoff,
        std::chrono::microseconds(static_cast<int64_t>(
            static_cast<double>(backoff.count()) * policy_.multiplier)));
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (stats_sink_ != nullptr) ++stats_sink_->retries;
    status = op();
  }
  return status;
}

PageId RetryingPager::num_pages() const { return base_->num_pages(); }

Result<PageId> RetryingPager::Allocate() {
  PageId id = kInvalidPageId;
  const Status status = RunWithRetries([&] {
    auto result = base_->Allocate();
    if (result.ok()) id = *result;
    return result.status();
  });
  if (!status.ok()) return status;
  return id;
}

Status RetryingPager::Read(PageId id, uint8_t* out) {
  return RunWithRetries([&] { return base_->Read(id, out); });
}

Status RetryingPager::Write(PageId id, const uint8_t* src) {
  return RunWithRetries([&] { return base_->Write(id, src); });
}

Status RetryingPager::Sync() {
  return RunWithRetries([&] { return base_->Sync(); });
}

void RetryingPager::WillNeed(PageId first, size_t count) {
  // No retry budget for a hint that cannot fail.
  base_->WillNeed(first, count);
}

}  // namespace vitri::storage
