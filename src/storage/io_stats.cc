#include "storage/io_stats.h"

#include <sstream>

namespace vitri::storage {

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "logical_reads=" << logical_reads.load(std::memory_order_relaxed)
     << " cache_hits=" << cache_hits.load(std::memory_order_relaxed)
     << " physical_reads="
     << physical_reads.load(std::memory_order_relaxed)
     << " physical_writes="
     << physical_writes.load(std::memory_order_relaxed)
     << " allocations=" << allocations.load(std::memory_order_relaxed)
     << " checksum_failures="
     << checksum_failures.load(std::memory_order_relaxed)
     << " retries=" << retries.load(std::memory_order_relaxed);
  return os.str();
}

}  // namespace vitri::storage
