#include "storage/io_stats.h"

#include <sstream>

namespace vitri::storage {

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "logical_reads=" << logical_reads << " cache_hits=" << cache_hits
     << " physical_reads=" << physical_reads
     << " physical_writes=" << physical_writes
     << " allocations=" << allocations
     << " checksum_failures=" << checksum_failures
     << " retries=" << retries;
  return os.str();
}

}  // namespace vitri::storage
