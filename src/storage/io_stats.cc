#include "storage/io_stats.h"

#include <sstream>

namespace vitri::storage {

IoSnapshot IoStats::Snapshot() const {
  IoSnapshot s;
  s.logical_reads = logical_reads.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits.load(std::memory_order_relaxed);
  s.physical_reads = physical_reads.load(std::memory_order_relaxed);
  s.physical_writes = physical_writes.load(std::memory_order_relaxed);
  s.allocations = allocations.load(std::memory_order_relaxed);
  s.checksum_failures = checksum_failures.load(std::memory_order_relaxed);
  s.retries = retries.load(std::memory_order_relaxed);
  s.evictions = evictions.load(std::memory_order_relaxed);
  s.prefetch_issued = prefetch_issued.load(std::memory_order_relaxed);
  s.prefetch_hits = prefetch_hits.load(std::memory_order_relaxed);
  return s;
}

IoStats IoStats::operator-(const IoStats& rhs) const {
  // Delta arithmetic happens on plain snapshots; only the result is
  // rematerialized as atomics (for callers that still expect IoStats).
  const IoSnapshot delta = Snapshot() - rhs.Snapshot();
  IoStats out;
  RestoreIoStats(&out, delta);
  return out;
}

void RestoreIoStats(IoStats* stats, const IoSnapshot& saved) {
  stats->logical_reads.store(saved.logical_reads,
                             std::memory_order_relaxed);
  stats->cache_hits.store(saved.cache_hits, std::memory_order_relaxed);
  stats->physical_reads.store(saved.physical_reads,
                              std::memory_order_relaxed);
  stats->physical_writes.store(saved.physical_writes,
                               std::memory_order_relaxed);
  stats->allocations.store(saved.allocations, std::memory_order_relaxed);
  stats->checksum_failures.store(saved.checksum_failures,
                                 std::memory_order_relaxed);
  stats->retries.store(saved.retries, std::memory_order_relaxed);
  stats->evictions.store(saved.evictions, std::memory_order_relaxed);
  stats->prefetch_issued.store(saved.prefetch_issued,
                               std::memory_order_relaxed);
  stats->prefetch_hits.store(saved.prefetch_hits,
                             std::memory_order_relaxed);
}

ScopedIoStatsRestore::ScopedIoStatsRestore(IoStats* stats)
    : stats_(stats), saved_(stats->Snapshot()) {}

ScopedIoStatsRestore::~ScopedIoStatsRestore() {
  RestoreIoStats(stats_, saved_);
}

namespace {

std::string CountersToString(const IoSnapshot& s) {
  std::ostringstream os;
  os << "logical_reads=" << s.logical_reads
     << " cache_hits=" << s.cache_hits
     << " physical_reads=" << s.physical_reads
     << " physical_writes=" << s.physical_writes
     << " allocations=" << s.allocations
     << " checksum_failures=" << s.checksum_failures
     << " retries=" << s.retries
     << " evictions=" << s.evictions
     << " prefetch_issued=" << s.prefetch_issued
     << " prefetch_hits=" << s.prefetch_hits;
  return os.str();
}

}  // namespace

std::string IoStats::ToString() const { return CountersToString(Snapshot()); }

std::string IoSnapshot::ToString() const { return CountersToString(*this); }

}  // namespace vitri::storage
