#ifndef VITRI_STORAGE_REPLACER_H_
#define VITRI_STORAGE_REPLACER_H_

#include <cstddef>
#include <vector>

namespace vitri::storage {

/// Eviction policy over a fixed set of frame slots [0, capacity).
/// Extracted from the buffer pool so the policy is testable in
/// isolation and swappable per shard (DESIGN.md §16).
///
/// Clock / second-chance: an unpinned frame enters the candidate set
/// with its reference bit set; Victim() sweeps a clock hand over the
/// slots, clearing reference bits, and evicts the first candidate found
/// with its bit already clear. A frame re-referenced between sweeps
/// (Pin + Unpin) gets its bit set again and survives another pass, so
/// hot frames behave LRU-ish while the bookkeeping is O(1) per touch
/// with no list splicing on the fetch hot path.
///
/// Not thread-safe: the owning pool shard guards it with its latch.
class ClockReplacer {
 public:
  /// `capacity` is the number of frame slots the replacer tracks; all
  /// slots start pinned (not candidates).
  explicit ClockReplacer(size_t capacity);

  /// Marks `slot` as a victim candidate (its pin count hit zero) and
  /// sets its reference bit, granting one full sweep of grace.
  /// Idempotent: unpinning a candidate just re-arms its bit.
  void Unpin(size_t slot);

  /// Removes `slot` from the candidate set (it was pinned, or its frame
  /// was freed). No-op if it was not a candidate.
  void Pin(size_t slot);

  /// Second-chance sweep: advances the hand, clearing reference bits of
  /// candidates it passes, and claims the first candidate whose bit is
  /// already clear. The claimed slot leaves the candidate set. Returns
  /// false (leaving *slot untouched) when there are no candidates.
  bool Victim(size_t* slot);

  /// Number of victim candidates currently tracked.
  size_t size() const { return candidates_; }
  /// Total slots tracked (fixed at construction).
  size_t capacity() const { return entries_.size(); }
  /// Whether `slot` is currently a candidate (validator introspection).
  bool Contains(size_t slot) const;
  /// Current hand position (test introspection).
  size_t hand() const { return hand_; }

 private:
  struct Entry {
    bool candidate = false;
    bool referenced = false;
  };

  std::vector<Entry> entries_;
  size_t candidates_ = 0;
  size_t hand_ = 0;
};

}  // namespace vitri::storage

#endif  // VITRI_STORAGE_REPLACER_H_
