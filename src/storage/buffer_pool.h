#ifndef VITRI_STORAGE_BUFFER_POOL_H_
#define VITRI_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/annotated_lock.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/pager.h"
#include "storage/replacer.h"

namespace vitri::storage {

class BufferPool;

/// RAII pin on a cached page. Unpins on destruction. Mark dirty after
/// mutating the buffer. Movable, not copyable. A PageRef may be created,
/// used, and released on any thread, but a single PageRef object must
/// not be shared between threads without external synchronization, and
/// mutating the page bytes of a given page requires exclusive ownership
/// of that page (the pool latches its bookkeeping, not page contents).
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { MoveFrom(other); }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }

  /// Read-only view of the page bytes.
  const uint8_t* data() const { return data_; }

  /// Mutable view; call MarkDirty() after writing.
  uint8_t* mutable_data() { return data_; }

  /// Flags the page for write-back on eviction/flush.
  void MarkDirty();

  /// Explicit early unpin (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, PageId id, uint8_t* data)
      : pool_(pool), id_(id), data_(data) {}

  void MoveFrom(PageRef& other) {
    pool_ = other.pool_;
    id_ = other.id_;
    data_ = other.data_;
    dirty_latch_ = other.dirty_latch_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.id_ = kInvalidPageId;
    other.dirty_latch_ = false;
  }

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  uint8_t* data_ = nullptr;
  bool dirty_latch_ = false;
};

/// Knobs for a BufferPool.
struct BufferPoolOptions {
  /// Finish FlushAll() (and therefore destruction) with Pager::Sync(),
  /// making the flush a durability point rather than just a write-back
  /// into the OS page cache. How strong that point is depends on the
  /// pager's own sync mode (FilePager::Open's FileSyncMode). Disable
  /// for throwaway benchmark pools where the file is never reopened.
  bool sync_on_flush = true;

  /// Number of independently latched sub-pools the frames are split
  /// into (page id modulo shard count picks the shard). 0 = auto:
  /// capacity/8 clamped to [1, 8], so small test pools stay one shard
  /// (single-latch behavior, byte-identical results) and big pools
  /// spread contention. The VITRI_POOL_SHARDS environment variable
  /// overrides *auto* only — an explicit count here always wins — which
  /// is how the one-shard CI leg pins the whole suite to one shard.
  /// Always clamped to [1, capacity] so every shard owns >= 1 frame.
  size_t shards = 0;

  /// Pages per readahead hint: Prefetch(id) advises the pager that
  /// [id, id+readahead_pages) will be read (FilePager turns this into
  /// posix_fadvise(WILLNEED); MemPager ignores it). Bulk-loaded leaf
  /// chains are contiguous on disk, so a span starting at the next
  /// sibling covers the scan's near future. 0 disables readahead
  /// entirely (Prefetch becomes a no-op).
  size_t readahead_pages = 8;

  /// Worker threads for asynchronous frame prefetch. 0 (default) keeps
  /// Prefetch hint-only: the kernel may read ahead, but no frame is
  /// populated until a demand Fetch. > 0 additionally loads the hinted
  /// page into its shard on a pool-owned thread, so the demand fetch
  /// finds it resident (counted in prefetch_hits). Async prefetch
  /// consumes frames and may evict, so it is opt-in.
  size_t prefetch_threads = 0;
};

/// Sharded buffer pool over a Pager, with clock (second-chance)
/// replacement per shard. Pages map to shards by id; each shard owns a
/// fixed set of frames, its own page table, replacer, and latch, so
/// fetches of pages in different shards never contend. Tracks logical
/// fetches, cache hits, and physical transfers in per-shard IoStats —
/// the counters the experiment harnesses report as the paper's "I/O
/// cost" — folded together on read (stats()).
///
/// The pool is also the page-integrity boundary: every page written back
/// is stamped with a checksum footer (storage/page_footer.h) and every
/// page read from the pager is verified. A mismatch fails the Fetch with
/// Status::Corruption and quarantines the page id in corrupt_pages().
///
/// Thread-safety: all public operations are safe to call concurrently.
/// Each shard's latch guards that shard's bookkeeping only; pager I/O
/// runs *outside* the latch, with per-frame load/evict states keeping
/// concurrent fetches of the same page from racing (duplicate loads
/// park on the shard's condvar; a page mid-writeback is fetched only
/// after the write lands, so readers never see stale bytes). Shard
/// latches are leaves of the lock order (DESIGN.md §14, §16) and are
/// never held two at a time. The backing pager must honor the Pager
/// concurrency contract (pager.h). Page *contents* are not latched:
/// concurrent readers of a page are fine, but a writer needs exclusive
/// ownership of that page. FlushAll()/EvictAll() write back pinned
/// dirty frames too, so they must not run concurrently with writers
/// mutating pinned pages.
class BufferPool {
 public:
  /// `capacity` is the number of resident frames (>= 1), split across
  /// the shards. The pool does not own the pager.
  BufferPool(Pager* pager, size_t capacity);
  BufferPool(Pager* pager, size_t capacity, const BufferPoolOptions& options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Fetches (pinning) an existing page.
  Result<PageRef> Fetch(PageId id);

  /// Allocates a new page in the pager and returns it pinned and dirty.
  Result<PageRef> New();

  /// Readahead hint: pages [id, id+readahead_pages) are likely to be
  /// fetched soon. Forwards to Pager::WillNeed and, when async prefetch
  /// is configured, schedules a background load of `id` into its shard.
  /// Advisory: never fails, never pins, never counts a logical read —
  /// the paper's page-access figures see only demand fetches.
  void Prefetch(PageId id);

  /// Writes back all dirty frames (pages stay cached).
  Status FlushAll();

  /// Drains in-flight prefetches, then drops every unpinned frame after
  /// flushing it; simulates a cold cache for benchmark repeatability.
  Status EvictAll();

  /// Aggregated counters, folded across the shards (plus the external
  /// sink) at call time. Each field is a sum of atomic loads, so totals
  /// never tear even while other threads fetch. Returned by value: with
  /// sharded counters there is no single live struct to reference.
  IoStats stats() const;
  /// Same fold as plain integers — the cheap form for deltas.
  IoSnapshot StatsSnapshot() const;
  /// One snapshot per shard (index = shard number), for per-shard
  /// hit-rate / balance reporting. Excludes the external sink.
  std::vector<IoSnapshot> ShardSnapshots() const;

  /// Counter sink for pager decorators (RetryingPager::set_stats_sink):
  /// an extra IoStats folded into stats() that does not belong to any
  /// shard. Writing other fields through it (tests) is fine too.
  IoStats* external_stats() { return &external_stats_; }

  /// Everything stats() folds, split by origin — the save/restore
  /// currency of ScopedPoolStatsRestore.
  struct StatsSave {
    std::vector<IoSnapshot> shards;
    IoSnapshot external;
  };
  /// Save/restore of every counter the pool owns. Restoring while other
  /// threads use the pool silently drops their increments; callers
  /// require exclusive access (same caveat as RestoreIoStats).
  StatsSave SaveStats() const;
  void RestoreStats(const StatsSave& saved);

  /// Page ids whose checksum verification failed since construction (or
  /// the last ClearCorruptPages). Ordered for stable reporting; returns
  /// a copy so the caller's view cannot race with concurrent fetches.
  std::set<PageId> corrupt_pages() const;
  void ClearCorruptPages();

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  const BufferPoolOptions& options() const { return options_; }
  size_t resident() const;
  /// The pointer itself is set at construction and immutable; the
  /// pointee is thread-safe per the Pager contract.
  Pager* pager() const { return pager_; }

  /// Deep self-check of the pool's bookkeeping, shard by shard: every
  /// frame slot is exactly one of free / table-mapped, every table
  /// entry names a frame that agrees on its page id AND lives in the
  /// page's home shard, the replacer tracks exactly the unpinned
  /// resident slots (a pinned frame in the replacer is a violation),
  /// pin counts are non-negative, frame buffers match the pager's page
  /// size, and the hit counter never exceeds the fetch counter. Runs
  /// after every mutating operation in debug builds (VITRI_DCHECK) and
  /// via `vitri check`; returns Internal naming the violated invariant.
  /// Requires no in-flight pool operations (frames mid-load/mid-evict
  /// are deliberately in transitional states).
  Status ValidateInvariants() const;

 private:
  friend class PageRef;
  /// Test hook: lets invariant tests break internal bookkeeping on
  /// purpose to prove ValidateInvariants() catches it.
  friend struct BufferPoolTestPeer;

  struct Frame {
    PageId id = kInvalidPageId;
    std::vector<uint8_t> data;
    int pin_count = 0;
    bool dirty = false;
    /// A demand load or async prefetch is filling `data`; the filling
    /// thread owns the bytes, everyone else parks on the shard condvar.
    bool loading = false;
    /// Loaded by async prefetch and not yet demanded; the first demand
    /// fetch clears it and counts a prefetch hit.
    bool prefetched = false;
  };

  /// Cached per-shard registry counters (buffer_pool.shard.<i>.*).
  /// Looked up once at construction — the VITRI_METRIC_* macros cache
  /// per *call site*, which would pin every shard to shard 0's counter.
  struct ShardMetrics {
    metrics::Counter* fetches = nullptr;
    metrics::Counter* hits = nullptr;
    metrics::Counter* evictions = nullptr;
    metrics::Counter* prefetch_issued = nullptr;
    metrics::Counter* prefetch_hits = nullptr;
  };

  /// One independently latched sub-pool. The latch guards the
  /// bookkeeping containers and every Frame's bookkeeping fields; frame
  /// *data* buffers are handed off to I/O threads via the loading flag
  /// and the evicting set (the mutex release/acquire orders the bytes).
  struct Shard {
    /// Position in shards_ (for diagnostics and the home-shard check).
    size_t index = 0;
    mutable Mutex latch;
    /// Signaled when a load finishes or an eviction write-back lands.
    CondVar cv;
    /// Fixed at construction; never resized (stable Frame addresses).
    std::vector<Frame> frames;
    /// Resident page -> slot index in `frames`.
    std::unordered_map<PageId, size_t> table VITRI_GUARDED_BY(latch);
    /// Slots whose frame holds no page.
    std::vector<size_t> free_list VITRI_GUARDED_BY(latch);
    /// Victim selection over the unpinned resident slots.
    ClockReplacer replacer VITRI_GUARDED_BY(latch){0};
    /// Pages mid-writeback: already out of `table`, bytes not yet on
    /// the pager. Fetches of these pages wait — re-reading now would
    /// resurrect the stale on-disk version and lose the dirty write.
    std::unordered_set<PageId> evicting VITRI_GUARDED_BY(latch);
    IoStats stats;
    std::set<PageId> corrupt VITRI_GUARDED_BY(latch);
    ShardMetrics metrics;
  };

  Shard& ShardFor(PageId id) { return *shards_[id % shards_.size()]; }
  const Shard& ShardFor(PageId id) const {
    return *shards_[id % shards_.size()];
  }

  void Unpin(PageId id, bool dirty);

  /// Claims a slot in `s` that is in no structure (not in the table,
  /// free list, or replacer): pops a free slot, or evicts the replacer's
  /// victim — writing a dirty victim back *outside* the latch, with the
  /// page parked in `evicting` meanwhile. ResourceExhausted when every
  /// frame is pinned; a failed write-back reinstalls the victim and
  /// propagates the error.
  Result<size_t> ClaimSlot(Shard& s) VITRI_EXCLUDES(s.latch);

  /// Loads page `id` into `s` via a claimed slot. With `demand`, the
  /// frame stays pinned once and the Result carries its data pointer;
  /// errors (including a failed integrity check, which quarantines the
  /// page) propagate. Without, the frame lands unpinned+prefetched and
  /// errors only update counters — prefetch is best-effort.
  Result<uint8_t*> LoadPage(Shard& s, PageId id, bool demand)
      VITRI_EXCLUDES(s.latch);

  /// Background half of Prefetch(): loads `id` if still absent.
  void PrefetchLoad(PageId id);
  /// Blocks until no async prefetch is queued or running.
  void DrainPrefetches();

  Status WriteBackLocked(Shard& s, Frame& frame) VITRI_REQUIRES(s.latch);
  Status ValidateShardLocked(const Shard& s) const VITRI_REQUIRES(s.latch);

  /// Set at construction, never reassigned; thread-safe per contract.
  Pager* const pager_;
  size_t capacity_;
  BufferPoolOptions options_;
  /// unique_ptr for address stability (Shard holds a Mutex and is
  /// neither movable nor copyable).
  std::vector<std::unique_ptr<Shard>> shards_;
  IoStats external_stats_;

  std::unique_ptr<ThreadPool> prefetch_pool_;
  Mutex prefetch_mu_;
  CondVar prefetch_cv_;
  size_t prefetch_outstanding_ VITRI_GUARDED_BY(prefetch_mu_) = 0;
};

/// Pool-wide counterpart of ScopedIoStatsRestore: captures every shard's
/// counters (and the external sink) on construction and restores them on
/// destruction, making the enclosed scope invisible to I/O cost
/// accounting. Same exclusivity caveat: no other thread may use the
/// pool for the scope's lifetime.
class ScopedPoolStatsRestore {
 public:
  explicit ScopedPoolStatsRestore(BufferPool* pool)
      : pool_(pool), saved_(pool->SaveStats()) {}
  ~ScopedPoolStatsRestore() { pool_->RestoreStats(saved_); }

  ScopedPoolStatsRestore(const ScopedPoolStatsRestore&) = delete;
  ScopedPoolStatsRestore& operator=(const ScopedPoolStatsRestore&) = delete;

  const BufferPool::StatsSave& saved() const { return saved_; }

 private:
  BufferPool* pool_;
  BufferPool::StatsSave saved_;
};

}  // namespace vitri::storage

#endif  // VITRI_STORAGE_BUFFER_POOL_H_
