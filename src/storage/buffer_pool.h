#ifndef VITRI_STORAGE_BUFFER_POOL_H_
#define VITRI_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/annotated_lock.h"
#include "common/result.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace vitri::storage {

class BufferPool;

/// RAII pin on a cached page. Unpins on destruction. Mark dirty after
/// mutating the buffer. Movable, not copyable. A PageRef may be created,
/// used, and released on any thread, but a single PageRef object must
/// not be shared between threads without external synchronization, and
/// mutating the page bytes of a given page requires exclusive ownership
/// of that page (the pool latches its bookkeeping, not page contents).
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { MoveFrom(other); }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }

  /// Read-only view of the page bytes.
  const uint8_t* data() const { return data_; }

  /// Mutable view; call MarkDirty() after writing.
  uint8_t* mutable_data() { return data_; }

  /// Flags the page for write-back on eviction/flush.
  void MarkDirty();

  /// Explicit early unpin (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, PageId id, uint8_t* data)
      : pool_(pool), id_(id), data_(data) {}

  void MoveFrom(PageRef& other) {
    pool_ = other.pool_;
    id_ = other.id_;
    data_ = other.data_;
    dirty_latch_ = other.dirty_latch_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.id_ = kInvalidPageId;
    other.dirty_latch_ = false;
  }

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  uint8_t* data_ = nullptr;
  bool dirty_latch_ = false;
};

/// LRU buffer pool over a Pager. Tracks logical fetches, cache hits, and
/// physical transfers in IoStats — the counters the experiment harnesses
/// report as the paper's "I/O cost".
///
/// The pool is also the page-integrity boundary: every page written back
/// is stamped with a checksum footer (storage/page_footer.h) and every
/// page read from the pager is verified. A mismatch fails the Fetch with
/// Status::Corruption and quarantines the page id in corrupt_pages().
///
/// Thread-safety: all public operations are safe to call concurrently.
/// A single latch guards the page table, LRU list, and pin counts; the
/// backing pager is only ever accessed with the latch held, so pagers
/// need no locking of their own. The latch is the innermost lock in the
/// system and no callback or user code runs under it (see DESIGN.md
/// "Threading model"). Page *contents* are not latched: concurrent
/// readers of a page are fine, but a writer needs exclusive ownership of
/// that page. FlushAll()/EvictAll() write back pinned dirty frames too,
/// so they must not run concurrently with writers mutating pinned pages.
/// Durability knobs for a BufferPool.
struct BufferPoolOptions {
  /// Finish FlushAll() (and therefore destruction) with Pager::Sync(),
  /// making the flush a durability point rather than just a write-back
  /// into the OS page cache. How strong that point is depends on the
  /// pager's own sync mode (FilePager::Open's FileSyncMode). Disable
  /// for throwaway benchmark pools where the file is never reopened.
  bool sync_on_flush = true;
};

class BufferPool {
 public:
  /// `capacity` is the number of resident frames (>= 1). The pool does
  /// not own the pager.
  BufferPool(Pager* pager, size_t capacity);
  BufferPool(Pager* pager, size_t capacity, const BufferPoolOptions& options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Fetches (pinning) an existing page.
  Result<PageRef> Fetch(PageId id) VITRI_EXCLUDES(latch_);

  /// Allocates a new page in the pager and returns it pinned and dirty.
  Result<PageRef> New() VITRI_EXCLUDES(latch_);

  /// Writes back all dirty frames (pages stay cached).
  Status FlushAll() VITRI_EXCLUDES(latch_);

  /// Drops every unpinned frame after flushing it; simulates a cold
  /// cache for benchmark repeatability.
  Status EvictAll() VITRI_EXCLUDES(latch_);

  /// The counters are atomic, so reading through the reference is safe
  /// while other threads fetch pages; copy it to snapshot a delta.
  const IoStats& stats() const { return stats_; }
  /// Writing through this pointer (the validators' save/restore trick)
  /// requires that no other thread is using the pool.
  IoStats* mutable_stats() { return &stats_; }

  /// Page ids whose checksum verification failed since construction (or
  /// the last ClearCorruptPages). Ordered for stable reporting; returns
  /// a copy so the caller's view cannot race with concurrent fetches.
  std::set<PageId> corrupt_pages() const VITRI_EXCLUDES(latch_) {
    MutexLock lock(latch_);
    return corrupt_pages_;
  }
  void ClearCorruptPages() VITRI_EXCLUDES(latch_) {
    MutexLock lock(latch_);
    corrupt_pages_.clear();
  }

  size_t capacity() const { return capacity_; }
  const BufferPoolOptions& options() const { return options_; }
  size_t resident() const VITRI_EXCLUDES(latch_) {
    MutexLock lock(latch_);
    return frames_.size();
  }
  /// The pointer itself is set at construction and immutable; callers
  /// outside the pool may use it only while no pool operation can be
  /// writing through it (e.g. single-threaded setup/teardown).
  Pager* pager() const { return pager_; }

  /// Deep self-check of the pool's bookkeeping: every frame's pin count
  /// is non-negative, a frame sits on the LRU list iff it is unpinned
  /// (exactly once, with a live back-pointer), no page id owns two
  /// frames, frame buffers match the pager's page size, and the hit
  /// counter never exceeds the fetch counter. Runs after every
  /// mutating operation in debug builds (VITRI_DCHECK) and via
  /// `vitri check`; returns Internal naming the violated invariant.
  Status ValidateInvariants() const VITRI_EXCLUDES(latch_);

 private:
  friend class PageRef;
  /// Test hook: lets invariant tests break internal bookkeeping on
  /// purpose to prove ValidateInvariants() catches it.
  friend struct BufferPoolTestPeer;

  struct Frame {
    PageId id = kInvalidPageId;
    std::vector<uint8_t> data;
    int pin_count = 0;
    bool dirty = false;
    // Position in lru_ when pin_count == 0.
    std::list<PageId>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(PageId id, bool dirty) VITRI_EXCLUDES(latch_);
  // The *Locked helpers assume latch_ is held by the caller — now a
  // compile-time contract under Clang's thread-safety analysis.
  Status EvictOneIfFullLocked() VITRI_REQUIRES(latch_);
  Status WriteBackLocked(Frame& frame) VITRI_REQUIRES(latch_);
  Status ValidateInvariantsLocked() const VITRI_REQUIRES(latch_);

  /// Set at construction, never reassigned; the pointee is only
  /// dereferenced with latch_ held (pagers need no locking of their own).
  Pager* const pager_ VITRI_PT_GUARDED_BY(latch_);
  size_t capacity_;
  BufferPoolOptions options_;
  /// Guards frames_, lru_, corrupt_pages_, and all pager_ access. The
  /// IoStats counters are atomic and may be read without it.
  mutable Mutex latch_;
  std::unordered_map<PageId, Frame> frames_ VITRI_GUARDED_BY(latch_);
  // Front = least recently used.
  std::list<PageId> lru_ VITRI_GUARDED_BY(latch_);
  IoStats stats_;
  std::set<PageId> corrupt_pages_ VITRI_GUARDED_BY(latch_);
};

}  // namespace vitri::storage

#endif  // VITRI_STORAGE_BUFFER_POOL_H_
