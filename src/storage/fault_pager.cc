#include "storage/fault_pager.h"

#include <cstring>
#include <sstream>

namespace vitri::storage {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransientIoError:
      return "transient-io-error";
    case FaultKind::kPersistentIoError:
      return "persistent-io-error";
    case FaultKind::kBitFlip:
      return "bit-flip";
    case FaultKind::kTornWrite:
      return "torn-write";
    case FaultKind::kSyncFailure:
      return "sync-failure";
  }
  return "unknown";
}

std::string FaultStats::ToString() const {
  std::ostringstream os;
  os << "transient_io_errors=" << transient_io_errors
     << " persistent_io_errors=" << persistent_io_errors
     << " bit_flips=" << bit_flips << " torn_writes=" << torn_writes
     << " sync_failures=" << sync_failures;
  return os.str();
}

FaultInjectingPager::FaultInjectingPager(std::unique_ptr<Pager> base,
                                         uint64_t seed)
    : Pager(base->page_size()), base_(std::move(base)), rng_(seed) {}

void FaultInjectingPager::AddRule(const FaultRule& rule) {
  MutexLock lock(mu_);
  rules_.push_back(ArmedRule{rule, 0, 0});
}

void FaultInjectingPager::ClearRules() {
  MutexLock lock(mu_);
  rules_.clear();
}

std::optional<FaultKind> FaultInjectingPager::NextFault(FaultOp op,
                                                        PageId id) {
  MutexLock lock(mu_);
  std::optional<FaultKind> firing;
  for (ArmedRule& armed : rules_) {
    const FaultRule& r = armed.rule;
    if (r.op != op) continue;
    if (r.page != kAnyPage && r.page != id) continue;
    ++armed.matches;
    if (armed.matches <= r.after) continue;
    bool fires;
    if (r.kind == FaultKind::kPersistentIoError) {
      fires = true;
    } else {
      fires = armed.fired < r.limit && (armed.matches - r.after) % r.every == 0;
    }
    if (fires && !firing.has_value()) {
      ++armed.fired;
      firing = r.kind;
    }
  }
  return firing;
}

void FaultInjectingPager::CountFault(FaultKind kind) {
  MutexLock lock(mu_);
  switch (kind) {
    case FaultKind::kTransientIoError:
      ++stats_.transient_io_errors;
      break;
    case FaultKind::kPersistentIoError:
      ++stats_.persistent_io_errors;
      break;
    case FaultKind::kBitFlip:
      ++stats_.bit_flips;
      break;
    case FaultKind::kTornWrite:
      ++stats_.torn_writes;
      break;
    case FaultKind::kSyncFailure:
      ++stats_.sync_failures;
      break;
  }
}

void FaultInjectingPager::FlipRandomBit(uint8_t* page) {
  size_t byte;
  int bit;
  {
    MutexLock lock(mu_);
    byte = rng_.Index(page_size());
    bit = static_cast<int>(rng_.Index(8));
  }
  page[byte] ^= static_cast<uint8_t>(1u << bit);
}

PageId FaultInjectingPager::num_pages() const { return base_->num_pages(); }

Result<PageId> FaultInjectingPager::Allocate() { return base_->Allocate(); }

Status FaultInjectingPager::Read(PageId id, uint8_t* out) {
  const std::optional<FaultKind> fault = NextFault(FaultOp::kRead, id);
  if (fault.has_value()) {
    switch (*fault) {
      case FaultKind::kTransientIoError:
      case FaultKind::kPersistentIoError:
        CountFault(*fault);
        return Status::IoError(std::string("injected ") +
                               FaultKindName(*fault) + " reading page " +
                               std::to_string(id));
      case FaultKind::kBitFlip: {
        VITRI_RETURN_IF_ERROR(base_->Read(id, out));
        CountFault(*fault);
        FlipRandomBit(out);
        return Status::OK();
      }
      case FaultKind::kTornWrite:
      case FaultKind::kSyncFailure:
        break;  // Not meaningful on reads; fall through to a clean read.
    }
  }
  return base_->Read(id, out);
}

Status FaultInjectingPager::Write(PageId id, const uint8_t* src) {
  const std::optional<FaultKind> fault = NextFault(FaultOp::kWrite, id);
  if (fault.has_value()) {
    switch (*fault) {
      case FaultKind::kTransientIoError:
      case FaultKind::kPersistentIoError:
        CountFault(*fault);
        return Status::IoError(std::string("injected ") +
                               FaultKindName(*fault) + " writing page " +
                               std::to_string(id));
      case FaultKind::kBitFlip: {
        std::vector<uint8_t> corrupted(src, src + page_size());
        CountFault(*fault);
        FlipRandomBit(corrupted.data());
        return base_->Write(id, corrupted.data());
      }
      case FaultKind::kTornWrite: {
        // First half of the new page lands; the tail keeps whatever was
        // stored before (zeros if the old read fails). The caller sees
        // success — exactly the silent failure checksums exist for.
        std::vector<uint8_t> torn(page_size(), 0);
        (void)base_->Read(id, torn.data());
        std::memcpy(torn.data(), src, page_size() / 2);
        CountFault(*fault);
        return base_->Write(id, torn.data());
      }
      case FaultKind::kSyncFailure:
        break;  // Not meaningful on writes; fall through.
    }
  }
  return base_->Write(id, src);
}

Status FaultInjectingPager::Sync() {
  const std::optional<FaultKind> fault = NextFault(FaultOp::kSync, kAnyPage);
  if (fault.has_value()) {
    switch (*fault) {
      case FaultKind::kSyncFailure:
      case FaultKind::kTransientIoError:
      case FaultKind::kPersistentIoError:
        CountFault(*fault);
        return Status::IoError(std::string("injected ") +
                               FaultKindName(*fault) + " on sync");
      default:
        break;
    }
  }
  return base_->Sync();
}

void FaultInjectingPager::WillNeed(PageId first, size_t count) {
  // Readahead never faults: it moves no data the checksum layer could
  // vouch for, and the demand Read that follows is where the schedule
  // expects its matches.
  base_->WillNeed(first, count);
}

}  // namespace vitri::storage
