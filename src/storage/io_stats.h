#ifndef VITRI_STORAGE_IO_STATS_H_
#define VITRI_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace vitri::storage {

/// Counters describing page traffic. "Logical" events are buffer-pool
/// fetches (what the paper's I/O-cost figures count as page accesses);
/// "physical" events are transfers that actually hit the backing pager.
///
/// Every counter is an atomic: increments from concurrent queries
/// (BatchKnn fan-out, parallel ingest) never race, so the save/restore
/// trick the ValidateInvariants() implementations use stays clean under
/// ThreadSanitizer. Copying or subtracting an IoStats reads each counter
/// with relaxed ordering — the copy is a per-field snapshot, not a
/// globally consistent one, which is all cost reporting needs. Restoring
/// saved counters (operator=) while *other* threads are mid-query would
/// silently drop their increments; callers that save/restore (the
/// invariant validators) therefore require exclusive access — see
/// DESIGN.md "Threading model".
struct IoStats {
  std::atomic<uint64_t> logical_reads{0};   // Buffer-pool fetches.
  std::atomic<uint64_t> cache_hits{0};      // Served without pager I/O.
  std::atomic<uint64_t> physical_reads{0};  // Pager reads.
  std::atomic<uint64_t> physical_writes{0};  // Pager writes.
  std::atomic<uint64_t> allocations{0};      // Newly allocated pages.
  std::atomic<uint64_t> checksum_failures{0};  // Footer-rejected reads.
  std::atomic<uint64_t> retries{0};  // Transient-IoError retries (see
                                     // storage/retry_pager.h).

  IoStats() = default;
  IoStats(const IoStats& rhs) { *this = rhs; }
  IoStats& operator=(const IoStats& rhs) {
    logical_reads.store(rhs.logical_reads.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    cache_hits.store(rhs.cache_hits.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    physical_reads.store(rhs.physical_reads.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    physical_writes.store(
        rhs.physical_writes.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    allocations.store(rhs.allocations.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    checksum_failures.store(
        rhs.checksum_failures.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    retries.store(rhs.retries.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    return *this;
  }

  void Reset() { *this = IoStats{}; }

  IoStats operator-(const IoStats& rhs) const {
    IoStats out;
    out.logical_reads = logical_reads.load(std::memory_order_relaxed) -
                        rhs.logical_reads.load(std::memory_order_relaxed);
    out.cache_hits = cache_hits.load(std::memory_order_relaxed) -
                     rhs.cache_hits.load(std::memory_order_relaxed);
    out.physical_reads = physical_reads.load(std::memory_order_relaxed) -
                         rhs.physical_reads.load(std::memory_order_relaxed);
    out.physical_writes =
        physical_writes.load(std::memory_order_relaxed) -
        rhs.physical_writes.load(std::memory_order_relaxed);
    out.allocations = allocations.load(std::memory_order_relaxed) -
                      rhs.allocations.load(std::memory_order_relaxed);
    out.checksum_failures =
        checksum_failures.load(std::memory_order_relaxed) -
        rhs.checksum_failures.load(std::memory_order_relaxed);
    out.retries = retries.load(std::memory_order_relaxed) -
                  rhs.retries.load(std::memory_order_relaxed);
    return out;
  }

  std::string ToString() const;
};

}  // namespace vitri::storage

#endif  // VITRI_STORAGE_IO_STATS_H_
