#ifndef VITRI_STORAGE_IO_STATS_H_
#define VITRI_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace vitri::storage {

/// Counters describing page traffic. "Logical" events are buffer-pool
/// fetches (what the paper's I/O-cost figures count as page accesses);
/// "physical" events are transfers that actually hit the backing pager.
struct IoStats {
  uint64_t logical_reads = 0;      // Buffer-pool fetches.
  uint64_t cache_hits = 0;         // Fetches served without pager I/O.
  uint64_t physical_reads = 0;     // Pager reads.
  uint64_t physical_writes = 0;    // Pager writes (evictions + flushes).
  uint64_t allocations = 0;        // Newly allocated pages.
  uint64_t checksum_failures = 0;  // Reads rejected by the page footer.
  uint64_t retries = 0;            // Transient-IoError retries (see
                                   // storage/retry_pager.h).

  void Reset() { *this = IoStats{}; }

  IoStats operator-(const IoStats& rhs) const {
    IoStats out;
    out.logical_reads = logical_reads - rhs.logical_reads;
    out.cache_hits = cache_hits - rhs.cache_hits;
    out.physical_reads = physical_reads - rhs.physical_reads;
    out.physical_writes = physical_writes - rhs.physical_writes;
    out.allocations = allocations - rhs.allocations;
    out.checksum_failures = checksum_failures - rhs.checksum_failures;
    out.retries = retries - rhs.retries;
    return out;
  }

  std::string ToString() const;
};

}  // namespace vitri::storage

#endif  // VITRI_STORAGE_IO_STATS_H_
