#ifndef VITRI_STORAGE_IO_STATS_H_
#define VITRI_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace vitri::storage {

/// Counters describing page traffic. "Logical" events are buffer-pool
/// fetches (what the paper's I/O-cost figures count as page accesses);
/// "physical" events are transfers that actually hit the backing pager.
///
/// Every counter is an atomic: increments from concurrent queries
/// (BatchKnn fan-out, parallel ingest) never race, so the save/restore
/// trick the ValidateInvariants() implementations use stays clean under
/// ThreadSanitizer. Copying or subtracting an IoStats reads each counter
/// with relaxed ordering — the copy is a per-field snapshot, not a
/// globally consistent one, which is all cost reporting needs. Restoring
/// saved counters (operator=) while *other* threads are mid-query would
/// silently drop their increments; callers that save/restore (the
/// invariant validators) therefore require exclusive access — see
/// DESIGN.md "Threading model".
struct IoStats {
  std::atomic<uint64_t> logical_reads{0};   // Buffer-pool fetches.
  std::atomic<uint64_t> cache_hits{0};      // Served without pager I/O.
  std::atomic<uint64_t> physical_reads{0};  // Pager reads.
  std::atomic<uint64_t> physical_writes{0};  // Pager writes.
  std::atomic<uint64_t> allocations{0};      // Newly allocated pages.
  std::atomic<uint64_t> checksum_failures{0};  // Footer-rejected reads.
  std::atomic<uint64_t> retries{0};  // Transient-IoError retries (see
                                     // storage/retry_pager.h).
  std::atomic<uint64_t> evictions{0};  // Frames recycled by the replacer.
  std::atomic<uint64_t> prefetch_issued{0};  // Readahead hints acted on.
  std::atomic<uint64_t> prefetch_hits{0};  // Fetches served by a frame a
                                           // prefetch loaded.

  IoStats() = default;
  IoStats(const IoStats& rhs) { *this = rhs; }
  IoStats& operator=(const IoStats& rhs) {
    logical_reads.store(rhs.logical_reads.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    cache_hits.store(rhs.cache_hits.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    physical_reads.store(rhs.physical_reads.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    physical_writes.store(
        rhs.physical_writes.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    allocations.store(rhs.allocations.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    checksum_failures.store(
        rhs.checksum_failures.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    retries.store(rhs.retries.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    evictions.store(rhs.evictions.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    prefetch_issued.store(
        rhs.prefetch_issued.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    prefetch_hits.store(rhs.prefetch_hits.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    return *this;
  }

  void Reset() { *this = IoStats{}; }

  /// Per-field relaxed snapshot as plain integers (see IoSnapshot).
  /// All delta arithmetic and save/restore goes through snapshots, so
  /// there is exactly one audited load site for every counter.
  struct IoSnapshot Snapshot() const;

  IoStats operator-(const IoStats& rhs) const;

  std::string ToString() const;
};

/// Plain-integer copy of an IoStats: the value type for deltas, query
/// traces, and the validators' save/restore. Field-wise arithmetic on
/// snapshots cannot race (no atomics), which is why every derived
/// quantity is computed here rather than on live counters.
struct IoSnapshot {
  uint64_t logical_reads = 0;
  uint64_t cache_hits = 0;
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;
  uint64_t allocations = 0;
  uint64_t checksum_failures = 0;
  uint64_t retries = 0;
  uint64_t evictions = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;

  /// Field-wise sum: how a sharded pool's per-shard snapshots fold into
  /// one total (each addend is a plain integer, so totals never tear).
  IoSnapshot operator+(const IoSnapshot& rhs) const {
    IoSnapshot out;
    out.logical_reads = logical_reads + rhs.logical_reads;
    out.cache_hits = cache_hits + rhs.cache_hits;
    out.physical_reads = physical_reads + rhs.physical_reads;
    out.physical_writes = physical_writes + rhs.physical_writes;
    out.allocations = allocations + rhs.allocations;
    out.checksum_failures = checksum_failures + rhs.checksum_failures;
    out.retries = retries + rhs.retries;
    out.evictions = evictions + rhs.evictions;
    out.prefetch_issued = prefetch_issued + rhs.prefetch_issued;
    out.prefetch_hits = prefetch_hits + rhs.prefetch_hits;
    return out;
  }

  IoSnapshot operator-(const IoSnapshot& rhs) const {
    IoSnapshot out;
    out.logical_reads = logical_reads - rhs.logical_reads;
    out.cache_hits = cache_hits - rhs.cache_hits;
    out.physical_reads = physical_reads - rhs.physical_reads;
    out.physical_writes = physical_writes - rhs.physical_writes;
    out.allocations = allocations - rhs.allocations;
    out.checksum_failures = checksum_failures - rhs.checksum_failures;
    out.retries = retries - rhs.retries;
    out.evictions = evictions - rhs.evictions;
    out.prefetch_issued = prefetch_issued - rhs.prefetch_issued;
    out.prefetch_hits = prefetch_hits - rhs.prefetch_hits;
    return out;
  }
  bool operator==(const IoSnapshot&) const = default;

  std::string ToString() const;
};

/// Writes a snapshot's values back into live counters. Like IoStats
/// assignment, this silently drops increments from concurrently running
/// threads — callers require exclusive access to the pool.
void RestoreIoStats(IoStats* stats, const IoSnapshot& saved);

/// The audited save/restore helper: captures `stats` on construction
/// and restores it on destruction, making the enclosed scope invisible
/// to I/O cost accounting. This is the ONLY sanctioned way to run
/// bookkeeping reads (invariant validation, tracing probes) without
/// skewing the page-access counts the experiments report. Requires
/// exclusive access to the pool for the scope's lifetime (see the
/// IoStats restore caveat above).
class ScopedIoStatsRestore {
 public:
  explicit ScopedIoStatsRestore(IoStats* stats);
  ~ScopedIoStatsRestore();

  ScopedIoStatsRestore(const ScopedIoStatsRestore&) = delete;
  ScopedIoStatsRestore& operator=(const ScopedIoStatsRestore&) = delete;

  /// The counter values at construction time.
  const IoSnapshot& saved() const { return saved_; }

 private:
  IoStats* stats_;
  IoSnapshot saved_;
};

}  // namespace vitri::storage

#endif  // VITRI_STORAGE_IO_STATS_H_
