#ifndef VITRI_VIDEO_VIDEO_H_
#define VITRI_VIDEO_VIDEO_H_

#include <cstdint>
#include <vector>

#include "linalg/vec.h"

namespace vitri::video {

/// A video sequence: an ordered list of frame feature vectors. The
/// paper's similarity measure treats it as a multiset (temporal order is
/// not used), but order is kept for summarization locality and display.
struct VideoSequence {
  /// Database-unique id.
  uint32_t id = 0;
  /// Nominal clip length in seconds (dataset statistics only).
  double duration_seconds = 0.0;
  /// Per-frame features, all of the database's dimension.
  std::vector<linalg::Vec> frames;

  size_t num_frames() const { return frames.size(); }
};

/// An in-memory collection of sequences sharing one feature dimension.
struct VideoDatabase {
  int dimension = 0;
  std::vector<VideoSequence> videos;

  size_t num_videos() const { return videos.size(); }
  size_t total_frames() const {
    size_t n = 0;
    for (const VideoSequence& v : videos) n += v.num_frames();
    return n;
  }
};

}  // namespace vitri::video

#endif  // VITRI_VIDEO_VIDEO_H_
