#include "video/serialization.h"

#include <cstdio>
#include <memory>
#include <vector>

#include "common/coding.h"

namespace vitri::video {
namespace {

constexpr uint32_t kMagic = 0x56564442;  // 'VVDB'
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteAll(std::FILE* f, const uint8_t* data, size_t size) {
  if (std::fwrite(data, 1, size, f) != size) {
    return Status::IoError("short write");
  }
  return Status::OK();
}

Status ReadAll(std::FILE* f, uint8_t* data, size_t size) {
  if (std::fread(data, 1, size, f) != size) {
    return Status::IoError("short read (truncated database?)");
  }
  return Status::OK();
}

Status WriteU32(std::FILE* f, uint32_t v) {
  uint8_t buf[4];
  EncodeU32(buf, v);
  return WriteAll(f, buf, 4);
}

Status WriteU64(std::FILE* f, uint64_t v) {
  uint8_t buf[8];
  EncodeU64(buf, v);
  return WriteAll(f, buf, 8);
}

Status WriteDouble(std::FILE* f, double v) {
  uint8_t buf[8];
  EncodeDouble(buf, v);
  return WriteAll(f, buf, 8);
}

Result<uint32_t> ReadU32(std::FILE* f) {
  uint8_t buf[4];
  VITRI_RETURN_IF_ERROR(ReadAll(f, buf, 4));
  return DecodeU32(buf);
}

Result<uint64_t> ReadU64(std::FILE* f) {
  uint8_t buf[8];
  VITRI_RETURN_IF_ERROR(ReadAll(f, buf, 8));
  return DecodeU64(buf);
}

Result<double> ReadDouble(std::FILE* f) {
  uint8_t buf[8];
  VITRI_RETURN_IF_ERROR(ReadAll(f, buf, 8));
  return DecodeDouble(buf);
}

}  // namespace

Status SaveDatabase(const VideoDatabase& db, const std::string& path) {
  const std::string tmp = path + ".tmp";
  FilePtr file(std::fopen(tmp.c_str(), "wb"));
  if (file == nullptr) {
    return Status::IoError("cannot open " + tmp + " for writing");
  }
  VITRI_RETURN_IF_ERROR(WriteU32(file.get(), kMagic));
  VITRI_RETURN_IF_ERROR(WriteU32(file.get(), kVersion));
  VITRI_RETURN_IF_ERROR(
      WriteU32(file.get(), static_cast<uint32_t>(db.dimension)));
  VITRI_RETURN_IF_ERROR(WriteU64(file.get(), db.videos.size()));
  std::vector<uint8_t> buffer;
  for (const VideoSequence& v : db.videos) {
    VITRI_RETURN_IF_ERROR(WriteU32(file.get(), v.id));
    VITRI_RETURN_IF_ERROR(WriteDouble(file.get(), v.duration_seconds));
    VITRI_RETURN_IF_ERROR(WriteU64(file.get(), v.frames.size()));
    buffer.resize(8 * static_cast<size_t>(db.dimension));
    for (const linalg::Vec& frame : v.frames) {
      if (frame.size() != static_cast<size_t>(db.dimension)) {
        return Status::InvalidArgument("frame dimension mismatch");
      }
      for (size_t j = 0; j < frame.size(); ++j) {
        EncodeDouble(buffer.data() + 8 * j, frame[j]);
      }
      VITRI_RETURN_IF_ERROR(
          WriteAll(file.get(), buffer.data(), buffer.size()));
    }
  }
  if (std::fflush(file.get()) != 0) {
    return Status::IoError("flush failed");
  }
  file.reset();
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename to " + path + " failed");
  }
  return Status::OK();
}

Result<VideoDatabase> LoadDatabase(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  VITRI_ASSIGN_OR_RETURN(uint32_t magic, ReadU32(file.get()));
  if (magic != kMagic) {
    return Status::Corruption("bad database magic");
  }
  VITRI_ASSIGN_OR_RETURN(uint32_t version, ReadU32(file.get()));
  if (version != kVersion) {
    return Status::Corruption("unsupported database version");
  }
  VideoDatabase db;
  VITRI_ASSIGN_OR_RETURN(uint32_t dimension, ReadU32(file.get()));
  if (dimension == 0 || dimension > (1u << 16)) {
    return Status::Corruption("implausible dimension");
  }
  db.dimension = static_cast<int>(dimension);
  VITRI_ASSIGN_OR_RETURN(uint64_t num_videos, ReadU64(file.get()));
  db.videos.reserve(num_videos);
  std::vector<uint8_t> buffer(8 * dimension);
  for (uint64_t i = 0; i < num_videos; ++i) {
    VideoSequence v;
    VITRI_ASSIGN_OR_RETURN(v.id, ReadU32(file.get()));
    VITRI_ASSIGN_OR_RETURN(v.duration_seconds, ReadDouble(file.get()));
    VITRI_ASSIGN_OR_RETURN(uint64_t num_frames, ReadU64(file.get()));
    v.frames.reserve(num_frames);
    for (uint64_t f = 0; f < num_frames; ++f) {
      VITRI_RETURN_IF_ERROR(
          ReadAll(file.get(), buffer.data(), buffer.size()));
      linalg::Vec frame(dimension);
      for (uint32_t j = 0; j < dimension; ++j) {
        frame[j] = DecodeDouble(buffer.data() + 8 * j);
      }
      v.frames.push_back(std::move(frame));
    }
    db.videos.push_back(std::move(v));
  }
  return db;
}

}  // namespace vitri::video
