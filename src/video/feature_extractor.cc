#include "video/feature_extractor.h"

namespace vitri::video {

Result<ColorHistogramExtractor> ColorHistogramExtractor::Create(
    int bits_per_channel) {
  if (bits_per_channel < 1 || bits_per_channel > 4) {
    return Status::InvalidArgument("bits_per_channel must be in [1, 4]");
  }
  return ColorHistogramExtractor(bits_per_channel);
}

Result<linalg::Vec> ColorHistogramExtractor::Extract(
    const Image& image) const {
  if (image.num_pixels() == 0) {
    return Status::InvalidArgument("cannot extract features of empty image");
  }
  linalg::Vec histogram(dimension_, 0.0);
  const int shift = 8 - bits_;
  const std::vector<uint8_t>& px = image.pixels();
  for (size_t i = 0; i < px.size(); i += 3) {
    const int r = px[i] >> shift;
    const int g = px[i + 1] >> shift;
    const int b = px[i + 2] >> shift;
    const int bin = (r << (2 * bits_)) | (g << bits_) | b;
    histogram[bin] += 1.0;
  }
  const double inv = 1.0 / static_cast<double>(image.num_pixels());
  for (double& v : histogram) v *= inv;
  return histogram;
}

}  // namespace vitri::video
