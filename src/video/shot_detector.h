#ifndef VITRI_VIDEO_SHOT_DETECTOR_H_
#define VITRI_VIDEO_SHOT_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "video/video.h"

namespace vitri::video {

/// One detected shot: frames [begin, end).
struct Shot {
  size_t begin = 0;
  size_t end = 0;

  size_t length() const { return end - begin; }
};

/// Options of the histogram-difference shot boundary detector.
struct ShotDetectorOptions {
  /// A boundary is declared where the consecutive-frame distance
  /// exceeds mean + threshold_sigmas * stddev of all consecutive
  /// distances (adaptive threshold)...
  double threshold_sigmas = 3.0;
  /// ...and also exceeds this absolute floor (guards against declaring
  /// boundaries in a perfectly static clip where sigma ~ 0).
  double min_cut_distance = 0.2;
  /// Boundaries closer than this many frames to the previous one are
  /// suppressed (flash/noise rejection).
  size_t min_shot_frames = 5;
};

/// Classic color-histogram shot boundary detection: the consecutive
/// frame distance spikes at a cut. Used by the shot-duration template
/// matching baseline [7] and available as a pre-segmentation stage.
Result<std::vector<Shot>> DetectShots(const VideoSequence& sequence,
                                      const ShotDetectorOptions& options = {});

/// The durations (in frames) of the detected shots, in order — the
/// "shot-change duration" signature of [7].
Result<std::vector<uint32_t>> ShotDurationSignature(
    const VideoSequence& sequence, const ShotDetectorOptions& options = {});

}  // namespace vitri::video

#endif  // VITRI_VIDEO_SHOT_DETECTOR_H_
