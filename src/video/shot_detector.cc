#include "video/shot_detector.h"

#include <cmath>

#include "linalg/vec.h"

namespace vitri::video {

Result<std::vector<Shot>> DetectShots(const VideoSequence& sequence,
                                      const ShotDetectorOptions& options) {
  if (sequence.frames.empty()) {
    return Status::InvalidArgument("cannot segment an empty sequence");
  }
  const size_t n = sequence.frames.size();
  if (n == 1) {
    return std::vector<Shot>{Shot{0, 1}};
  }

  // Consecutive-frame distances and their moments.
  std::vector<double> diffs(n - 1);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t i = 0; i + 1 < n; ++i) {
    diffs[i] = linalg::Distance(sequence.frames[i], sequence.frames[i + 1]);
    sum += diffs[i];
    sum_sq += diffs[i] * diffs[i];
  }
  const double mean = sum / static_cast<double>(diffs.size());
  const double variance =
      std::max(0.0, sum_sq / static_cast<double>(diffs.size()) - mean * mean);
  const double threshold =
      std::max(mean + options.threshold_sigmas * std::sqrt(variance),
               options.min_cut_distance);

  std::vector<Shot> shots;
  size_t begin = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    const bool is_cut = diffs[i] > threshold;
    const bool long_enough = (i + 1 - begin) >= options.min_shot_frames;
    if (is_cut && long_enough) {
      shots.push_back(Shot{begin, i + 1});
      begin = i + 1;
    }
  }
  shots.push_back(Shot{begin, n});
  return shots;
}

Result<std::vector<uint32_t>> ShotDurationSignature(
    const VideoSequence& sequence, const ShotDetectorOptions& options) {
  VITRI_ASSIGN_OR_RETURN(std::vector<Shot> shots,
                         DetectShots(sequence, options));
  std::vector<uint32_t> durations;
  durations.reserve(shots.size());
  for (const Shot& s : shots) {
    durations.push_back(static_cast<uint32_t>(s.length()));
  }
  return durations;
}

}  // namespace vitri::video
