#ifndef VITRI_VIDEO_FEATURE_EXTRACTOR_H_
#define VITRI_VIDEO_FEATURE_EXTRACTOR_H_

#include "common/result.h"
#include "linalg/vec.h"
#include "video/image.h"

namespace vitri::video {

/// RGB color-histogram frame features, exactly as in the paper's setup:
/// the `bits` most significant bits of each channel index a bin
/// (bits=2 -> 64 dimensions), and each bin is normalized by the total
/// pixel count, so features sum to 1.
class ColorHistogramExtractor {
 public:
  /// `bits_per_channel` in [1, 4]; dimension = 2^(3*bits).
  static Result<ColorHistogramExtractor> Create(int bits_per_channel = 2);

  /// Feature dimensionality (64 for the default 2 bits/channel).
  int dimension() const { return dimension_; }
  int bits_per_channel() const { return bits_; }

  /// Extracts the normalized histogram of `image` (must be non-empty).
  Result<linalg::Vec> Extract(const Image& image) const;

 private:
  explicit ColorHistogramExtractor(int bits)
      : bits_(bits), dimension_(1 << (3 * bits)) {}

  int bits_;
  int dimension_;
};

}  // namespace vitri::video

#endif  // VITRI_VIDEO_FEATURE_EXTRACTOR_H_
