#ifndef VITRI_VIDEO_SYNTHESIZER_H_
#define VITRI_VIDEO_SYNTHESIZER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "video/image.h"
#include "video/video.h"

namespace vitri::video {

/// Parameters of the synthetic TV-ad generator. Defaults model the
/// paper's dataset: 25 fps clips composed of shots whose frames are
/// mutually similar (well under the clustering threshold) while distinct
/// shots are well separated in feature space.
struct SynthesizerOptions {
  /// Feature dimensionality (64 matches the paper's RGB 2-bit histogram).
  int dimension = 64;
  /// Frames per second (PAL, as in the paper).
  double fps = 25.0;
  /// Shot length is drawn uniformly from [min, max] seconds.
  double min_shot_seconds = 1.5;
  double max_shot_seconds = 4.0;
  /// Number of histogram bins carrying most of a shot's mass; small
  /// values give realistic spiky color histograms.
  int active_bins = 5;
  /// Relative (multiplicative) per-bin jitter within a shot, baked into
  /// the footage itself (sensor noise survives re-airing because the
  /// paper's 2-bit histograms quantize away capture differences).
  double intra_shot_noise = 0.06;
  /// Small additional relative noise per capture of the same footage.
  double capture_noise = 0.01;
  /// Relative per-frame drift of the shot appearance (camera motion).
  /// Large enough that a shot traces an elongated path in feature space,
  /// as real pans/zooms do — the regime where single-representative
  /// summaries lose information (the paper s motivation).
  double drift_per_frame = 0.03;
  /// Probability that a new shot reuses footage from the shared shot
  /// pool instead of introducing a new appearance. Models the heavy
  /// footage reuse of real TV-ad corpora (shared stock shots, re-aired
  /// campaigns) that gives the paper's ground truth its structure.
  double shot_reuse_probability = 0.35;
  /// How strongly a clip's fresh shots lean toward the clip's own color
  /// palette (0 = independent shots, 1 = identical). Real ads are color
  /// graded consistently, which concentrates one clip's cluster keys in
  /// a narrow band of the one-dimensional space.
  double palette_weight = 0.35;
  /// Per-clip uniform jitter of the palette weight; mixes tightly graded
  /// clips with loose ones so inter-shot distances vary continuously
  /// (real corpora are not bimodal).
  double palette_weight_jitter = 0.20;
  /// Per-shot uniform scaling range of the intra-shot noise: a shot's
  /// activity is drawn from [1-x, 1+x] times intra_shot_noise (static
  /// product shots vs. busy action shots).
  double shot_activity_jitter = 0.5;
  /// Maximum size of the shared shot pool.
  size_t shot_pool_capacity = 512;
  /// PRNG seed.
  uint64_t seed = 2005;
};

/// Parameters of the near-duplicate transformation used to derive
/// queries with non-trivial ground truth overlap.
struct NearDuplicateOptions {
  /// Extra per-bin noise added to every frame. Defaults are mild: the
  /// paper's queries are re-captures of the same ad, which produce
  /// near-identical histograms.
  double noise = 2e-4;
  /// Keep each frame with this probability (temporal subsampling).
  double keep_probability = 0.9;
  /// Brightness-like multiplicative skew applied to bin masses.
  double gain_jitter = 0.05;
  uint64_t seed = 77;
};

/// Generates shot-structured synthetic clips directly in feature space
/// (the fast path used by the experiment harnesses) and via rendered
/// images (the full path used by examples/tests of the extractor).
class VideoSynthesizer {
 public:
  explicit VideoSynthesizer(const SynthesizerOptions& options = {});

  const SynthesizerOptions& options() const { return options_; }

  /// One clip of `duration_seconds`, frames synthesized in feature space.
  VideoSequence GenerateClip(uint32_t id, double duration_seconds);

  /// A photometrically/temporally perturbed copy of `clip` — a near
  /// duplicate with high (but not perfect) frame-level similarity.
  VideoSequence MakeNearDuplicate(const VideoSequence& clip,
                                  uint32_t new_id,
                                  const NearDuplicateOptions& nd = {});

  /// A database following the paper's Table 2 shape: a mix of 30s/15s/10s
  /// clips, scaled by `scale` in (0, 1]. At scale 1 the counts match the
  /// paper (2934/2519/1134 clips).
  VideoDatabase GenerateDatabase(double scale);

  /// One clip whose duration is drawn from the Table 2 mix
  /// (30s/15s/10s, weighted by the table's clip counts) — the streaming
  /// counterpart of GenerateDatabase() for out-of-core corpus
  /// construction, where clips are generated, summarized, and discarded
  /// chunk by chunk instead of materializing the whole database.
  VideoSequence GenerateMixClip(uint32_t id);

  /// Renders one frame image for a shot appearance; consecutive calls
  /// with increasing `frame_in_shot` produce slowly varying images of
  /// the same scene. Used by the image-pipeline examples.
  Image RenderShotFrame(uint64_t shot_seed, int frame_in_shot, int width,
                        int height);

  /// Number of distinct appearances currently in the shared shot pool.
  size_t shot_pool_size() const { return shot_pool_.size(); }

 private:
  /// The appearance trajectory of one piece of footage: the per-frame
  /// scene appearance, before capture noise. Reuse splices the same
  /// trajectory (same footage), so re-aired material matches at frame
  /// level like the paper's real re-captured ads.
  using Footage = std::vector<linalg::Vec>;

  /// A random spiky histogram near the given brightness level (the
  /// appearance of one shot).
  linalg::Vec RandomShotCenter(double brightness_target);
  /// Produces (or reuses) footage of `frames` frames for a clip with the
  /// given palette; the returned reference is valid until the next call.
  const Footage& NextShotFootage(const linalg::Vec& palette, int frames);
  /// Adds jitter/drift, clamps to >= 0 and re-normalizes to sum 1.
  void PerturbAndNormalize(linalg::Vec* frame, double sigma);

  SynthesizerOptions options_;
  Rng rng_;
  std::vector<Footage> shot_pool_;
  Footage scratch_footage_;
  double clip_brightness_ = 4.5;
};

}  // namespace vitri::video

#endif  // VITRI_VIDEO_SYNTHESIZER_H_
