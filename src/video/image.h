#ifndef VITRI_VIDEO_IMAGE_H_
#define VITRI_VIDEO_IMAGE_H_

#include <cstdint>
#include <vector>

namespace vitri::video {

/// Minimal RGB8 raster used by the synthetic frame pipeline. Pixels are
/// stored row-major, 3 bytes per pixel (R, G, B).
class Image {
 public:
  Image() = default;
  Image(int width, int height)
      : width_(width), height_(height), pixels_(3u * width * height, 0) {}

  int width() const { return width_; }
  int height() const { return height_; }
  size_t num_pixels() const { return static_cast<size_t>(width_) * height_; }

  const uint8_t* pixel(int x, int y) const {
    return pixels_.data() + 3 * (static_cast<size_t>(y) * width_ + x);
  }
  uint8_t* mutable_pixel(int x, int y) {
    return pixels_.data() + 3 * (static_cast<size_t>(y) * width_ + x);
  }

  void SetPixel(int x, int y, uint8_t r, uint8_t g, uint8_t b) {
    uint8_t* p = mutable_pixel(x, y);
    p[0] = r;
    p[1] = g;
    p[2] = b;
  }

  const std::vector<uint8_t>& pixels() const { return pixels_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> pixels_;
};

}  // namespace vitri::video

#endif  // VITRI_VIDEO_IMAGE_H_
