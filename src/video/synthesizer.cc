#include "video/synthesizer.h"

#include <algorithm>
#include <cmath>

namespace vitri::video {

using linalg::Vec;

VideoSynthesizer::VideoSynthesizer(const SynthesizerOptions& options)
    : options_(options), rng_(options.seed) {}

Vec VideoSynthesizer::RandomShotCenter(double brightness_target) {
  // A spiky histogram: a handful of dominant bins with exponential
  // weights, plus a tiny uniform floor, normalized to sum 1.
  //
  // Bins are drawn near a per-shot *brightness* level. Real footage has
  // a dominant global variance axis (dark cinematic shots vs. bright
  // product shots); for 2-bit RGB bins the brightness of bin
  // (r<<4|g<<2|b) is r+g+b. This is what gives the corpus a strong
  // first principal component for the optimal reference point to
  // exploit, exactly as in the paper's real data.
  Vec center(options_.dimension, 1e-4);
  const int actives = std::min(options_.active_bins, options_.dimension);
  const int bits = [&] {
    int b = 0;
    while ((1 << (3 * (b + 1))) <= options_.dimension) ++b;
    return std::max(1, b);
  }();
  const int max_level = 3 * ((1 << bits) - 1);
  const double target =
      std::clamp(brightness_target, 0.0, static_cast<double>(max_level));
  for (int a = 0; a < actives; ++a) {
    // Rejection-sample a bin whose brightness is near the target.
    size_t bin = 0;
    for (int attempt = 0; attempt < 64; ++attempt) {
      bin = rng_.Index(options_.dimension);
      const int mask = (1 << bits) - 1;
      const int r = static_cast<int>(bin >> (2 * bits)) & mask;
      const int g = static_cast<int>(bin >> bits) & mask;
      const int b = static_cast<int>(bin) & mask;
      const double gap = r + g + b - target;
      if (rng_.NextDouble() < std::exp(-gap * gap / 1.2)) break;
    }
    // Squared exponential draws give strongly skewed bin masses, like
    // real frames dominated by one or two quantized colors.
    const double e = -std::log(std::max(rng_.NextDouble(), 1e-12));
    center[bin] += e * e;
  }
  double sum = 0.0;
  for (double v : center) sum += v;
  for (double& v : center) v /= sum;
  return center;
}

const VideoSynthesizer::Footage& VideoSynthesizer::NextShotFootage(
    const Vec& palette, int frames) {
  if (!shot_pool_.empty() &&
      rng_.Bernoulli(options_.shot_reuse_probability)) {
    // Splice existing footage: a random sub-window of the source
    // trajectory (cyclic when the request is longer). Identical frames
    // where the windows overlap, so re-aired material matches the
    // original at frame level — partially, when only a segment is kept.
    const Footage& src = shot_pool_[rng_.Index(shot_pool_.size())];
    const size_t start = rng_.Index(src.size());
    scratch_footage_.clear();
    for (int f = 0; f < frames; ++f) {
      scratch_footage_.push_back(src[(start + f) % src.size()]);
    }
    return scratch_footage_;
  }

  // Fresh footage: a palette-blended appearance drifting slowly over
  // the shot (camera/object motion). Grading strength and shot activity
  // are jittered per shot for realistic variety.
  Vec appearance = RandomShotCenter(clip_brightness_ +
                                    rng_.Gaussian(0.0, 0.8));
  const double w = std::clamp(
      options_.palette_weight + rng_.Uniform(-options_.palette_weight_jitter,
                                             options_.palette_weight_jitter),
      0.0, 0.95);
  for (size_t i = 0; i < appearance.size(); ++i) {
    appearance[i] = w * palette[i] + (1.0 - w) * appearance[i];
  }
  const double activity =
      options_.intra_shot_noise *
      rng_.Uniform(1.0 - options_.shot_activity_jitter,
                   1.0 + options_.shot_activity_jitter);
  Footage footage;
  footage.reserve(frames);
  for (int f = 0; f < frames; ++f) {
    PerturbAndNormalize(&appearance, options_.drift_per_frame);
    // Sensor/compression noise is part of the footage: the paper's
    // coarse 2-bit histograms make re-aired material feature-identical,
    // so per-frame noise must be baked in, not re-drawn per capture.
    Vec frame = appearance;
    PerturbAndNormalize(&frame, activity);
    footage.push_back(std::move(frame));
  }
  if (shot_pool_.size() < options_.shot_pool_capacity) {
    shot_pool_.push_back(std::move(footage));
    return shot_pool_.back();
  }
  const size_t slot = rng_.Index(shot_pool_.size());
  shot_pool_[slot] = std::move(footage);
  return shot_pool_[slot];
}

void VideoSynthesizer::PerturbAndNormalize(Vec* frame, double sigma) {
  // Multiplicative jitter: motion and sensor noise shift mass between
  // *occupied* color bins, proportionally to their mass. (Additive
  // per-bin noise would smear mass over all 64 bins and flatten the
  // characteristic spikiness of real color histograms.) A tiny additive
  // floor models stray quantization flips.
  for (double& v : *frame) {
    v = std::max(0.0, v * (1.0 + rng_.Gaussian(0.0, sigma)) +
                          rng_.Gaussian(0.0, 2e-4));
  }
  double sum = 0.0;
  for (double v : *frame) sum += v;
  if (sum <= 0.0) {
    // Degenerate (all mass jittered away): reset to uniform.
    std::fill(frame->begin(), frame->end(),
              1.0 / static_cast<double>(frame->size()));
    return;
  }
  for (double& v : *frame) v /= sum;
}

VideoSequence VideoSynthesizer::GenerateClip(uint32_t id,
                                             double duration_seconds) {
  VideoSequence clip;
  clip.id = id;
  clip.duration_seconds = duration_seconds;
  const int total_frames = std::max(
      1, static_cast<int>(std::lround(duration_seconds * options_.fps)));
  clip.frames.reserve(total_frames);

  // The clip's color grade: a palette at a clip-level brightness. Real
  // ads are graded coherently (dark cinematic vs. bright product), which
  // is the corpus's dominant variance axis.
  clip_brightness_ = rng_.Uniform(0.0, 9.0);
  const Vec palette = RandomShotCenter(clip_brightness_);
  int produced = 0;
  while (produced < total_frames) {
    const double shot_seconds = rng_.Uniform(options_.min_shot_seconds,
                                             options_.max_shot_seconds);
    const int shot_frames =
        std::min(total_frames - produced,
                 std::max(1, static_cast<int>(std::lround(
                                 shot_seconds * options_.fps))));
    const Footage& footage = NextShotFootage(palette, shot_frames);
    for (int f = 0; f < shot_frames; ++f) {
      // The footage plus this capture's (small) noise.
      Vec frame = footage[f];
      PerturbAndNormalize(&frame, options_.capture_noise);
      clip.frames.push_back(std::move(frame));
    }
    produced += shot_frames;
  }
  return clip;
}

VideoSequence VideoSynthesizer::MakeNearDuplicate(
    const VideoSequence& clip, uint32_t new_id,
    const NearDuplicateOptions& nd) {
  Rng rng(nd.seed ^ (static_cast<uint64_t>(clip.id) * 0x9e3779b97f4a7c15ULL));
  VideoSequence out;
  out.id = new_id;
  out.duration_seconds = clip.duration_seconds;
  out.frames.reserve(clip.frames.size());
  for (const Vec& src : clip.frames) {
    if (!rng.Bernoulli(nd.keep_probability)) continue;
    Vec frame = src;
    // Multiplicative gain skew (brightness / compression artifacts).
    for (double& v : frame) {
      v *= std::max(0.0, 1.0 + rng.Gaussian(0.0, nd.gain_jitter));
      v = std::max(0.0, v + rng.Gaussian(0.0, nd.noise));
    }
    double sum = 0.0;
    for (double v : frame) sum += v;
    if (sum > 0.0) {
      for (double& v : frame) v /= sum;
    }
    out.frames.push_back(std::move(frame));
  }
  if (out.frames.empty()) out.frames.push_back(clip.frames.front());
  return out;
}

VideoDatabase VideoSynthesizer::GenerateDatabase(double scale) {
  scale = std::clamp(scale, 1e-4, 1.0);
  // Paper Table 2: 2934 clips of 30s, 2519 of 15s, 1134 of 10s.
  const struct {
    double seconds;
    int count;
  } mix[] = {{30.0, 2934}, {15.0, 2519}, {10.0, 1134}};

  VideoDatabase db;
  db.dimension = options_.dimension;
  uint32_t next_id = 0;
  for (const auto& m : mix) {
    const int count =
        std::max(1, static_cast<int>(std::lround(m.count * scale)));
    for (int i = 0; i < count; ++i) {
      db.videos.push_back(GenerateClip(next_id++, m.seconds));
    }
  }
  return db;
}

VideoSequence VideoSynthesizer::GenerateMixClip(uint32_t id) {
  // Same Table 2 weights as GenerateDatabase, sampled per clip so an
  // unbounded stream converges to the paper's duration mix.
  const double u = rng_.NextDouble() * (2934.0 + 2519.0 + 1134.0);
  const double seconds = u < 2934.0 ? 30.0 : (u < 2934.0 + 2519.0 ? 15.0 : 10.0);
  return GenerateClip(id, seconds);
}

Image VideoSynthesizer::RenderShotFrame(uint64_t shot_seed,
                                        int frame_in_shot, int width,
                                        int height) {
  // A scene is a few colored rectangles over a background gradient;
  // motion is a slow horizontal slide proportional to the frame number.
  Rng rng(shot_seed);
  Image img(width, height);

  const uint8_t bg_r = static_cast<uint8_t>(rng.UniformU64(256));
  const uint8_t bg_g = static_cast<uint8_t>(rng.UniformU64(256));
  const uint8_t bg_b = static_cast<uint8_t>(rng.UniformU64(256));
  for (int y = 0; y < height; ++y) {
    const int fade = (y * 32) / std::max(1, height);
    for (int x = 0; x < width; ++x) {
      img.SetPixel(x, y, static_cast<uint8_t>(std::min(255, bg_r + fade)),
                   bg_g, bg_b);
    }
  }

  const int num_rects = 3 + static_cast<int>(rng.UniformU64(4));
  for (int r = 0; r < num_rects; ++r) {
    const int w = 4 + static_cast<int>(rng.UniformU64(width / 2));
    const int h = 4 + static_cast<int>(rng.UniformU64(height / 2));
    int x0 = static_cast<int>(rng.UniformU64(width));
    const int y0 = static_cast<int>(rng.UniformU64(height));
    // Per-object motion: slide right at an object-specific speed.
    const int speed = 1 + static_cast<int>(rng.UniformU64(3));
    x0 = (x0 + speed * frame_in_shot / 4) % width;
    const uint8_t cr = static_cast<uint8_t>(rng.UniformU64(256));
    const uint8_t cg = static_cast<uint8_t>(rng.UniformU64(256));
    const uint8_t cb = static_cast<uint8_t>(rng.UniformU64(256));
    for (int y = y0; y < std::min(height, y0 + h); ++y) {
      for (int x = x0; x < std::min(width, x0 + w); ++x) {
        img.SetPixel(x, y, cr, cg, cb);
      }
    }
  }

  // Sensor noise: flip low bits of a sparse pixel subset. Uses the
  // member RNG so consecutive frames differ slightly.
  const size_t noisy = img.num_pixels() / 50;
  for (size_t i = 0; i < noisy; ++i) {
    const int x = static_cast<int>(rng_.UniformU64(width));
    const int y = static_cast<int>(rng_.UniformU64(height));
    uint8_t* p = img.mutable_pixel(x, y);
    for (int c = 0; c < 3; ++c) {
      const int delta = static_cast<int>(rng_.UniformU64(11)) - 5;
      p[c] = static_cast<uint8_t>(std::clamp(p[c] + delta, 0, 255));
    }
  }
  return img;
}

}  // namespace vitri::video
