#ifndef VITRI_VIDEO_SERIALIZATION_H_
#define VITRI_VIDEO_SERIALIZATION_H_

#include <string>

#include "common/result.h"
#include "video/video.h"

namespace vitri::video {

/// Binary (de)serialization of frame-level video databases, used by the
/// command-line tool so a dataset can be generated once and reused
/// across runs. Format: header (magic, version, dimension, video
/// count), then per video: id, duration, frame count, frames as raw
/// little-endian doubles.

/// Writes `db` to `path` (atomically via rename of a .tmp file).
Status SaveDatabase(const VideoDatabase& db, const std::string& path);

/// Reads a database written by SaveDatabase.
Result<VideoDatabase> LoadDatabase(const std::string& path);

}  // namespace vitri::video

#endif  // VITRI_VIDEO_SERIALIZATION_H_
