#ifndef VITRI_BTREE_BPLUS_TREE_H_
#define VITRI_BTREE_BPLUS_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/annotated_lock.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace vitri::btree {

/// One entry handed to bulk-load / returned by scans.
struct Entry {
  /// Search key — the one-dimensional transform value of a ViTri.
  double key = 0.0;
  /// Record id, unique per entry; tie-breaks equal keys so the tree
  /// stores strictly ordered composite keys (key, rid).
  uint64_t rid = 0;
  /// Fixed-size opaque payload (the serialized ViTri).
  std::vector<uint8_t> value;
};

/// Callback for range scans: return false to stop early. `value` points
/// into the pinned page and is only valid during the call.
using ScanCallback = std::function<bool(double key, uint64_t rid,
                                        std::span<const uint8_t> value)>;

/// Knobs for BPlusTree::ValidateInvariants.
struct TreeCheckOptions {
  /// Minimum occupancy fraction every non-root node must satisfy.
  /// The default is safely below both the deletion rebalance threshold
  /// (1/2) and the worst case of a BulkLoad at fill factors >= 0.5;
  /// callers that bulk-loaded at a known fill factor f may tighten it
  /// to f/2.
  double min_fill = 0.25;
  /// Also re-read every page of the backing pager and verify its
  /// integrity footer (storage::VerifyAllPages). Off by default: the
  /// structural walk already checksums pages it faults in, and offline
  /// audits (`vitri check`) turn this on for full coverage.
  bool verify_checksums = false;
};

/// Disk-paged B+-tree over composite keys (double, uint64) with
/// fixed-size values, built on a BufferPool.
///
/// Thread-safety: the tree carries a reader-writer latch. Lookup() and
/// RangeScan() take it shared and may run concurrently from any number
/// of threads; Insert(), Delete(), BulkLoad(), and ValidateInvariants()
/// — whose IoStats save/restore assumes a quiescent pool — take it
/// exclusive, so one writer proceeds alone while readers drain. This is
/// a deliberately coarse scheme: per-node latch crabbing buys nothing
/// while every page access funnels through the BufferPool's single
/// latch, so it is deferred until that latch is sharded (ROADMAP item
/// 4). One caveat: a RangeScan callback runs under the shared latch
/// and must not call back into the tree at all — a mutating operation
/// self-deadlocks, and even num_entries()/height() would re-enter the
/// shared latch, which std::shared_mutex does not permit recursively.
/// See DESIGN.md §13 and the lock catalog in §14.
///
/// Page 0 of the pager is the tree's meta page; interior pages hold
/// (separator, child) arrays, leaves hold (key, rid, value) records and
/// are doubly linked for ordered scans. Page-access counts (what the
/// paper reports as I/O cost) are read from the buffer pool's IoStats.
class BPlusTree {
 public:
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept = default;
  BPlusTree& operator=(BPlusTree&&) noexcept = default;

  /// Creates a fresh tree in an *empty* pager behind `pool`. `value_size`
  /// is the byte size of every record payload and must fit a page.
  static Result<BPlusTree> Create(storage::BufferPool* pool,
                                  uint32_t value_size);

  /// Opens an existing tree (meta page must be present and valid).
  static Result<BPlusTree> Open(storage::BufferPool* pool);

  /// Inserts one record. (key, rid) pairs must be unique; inserting a
  /// duplicate composite key fails with InvalidArgument.
  Status Insert(double key, uint64_t rid,
                std::span<const uint8_t> value);

  /// Deletes the record with composite key (key, rid). Returns true if
  /// it existed. Rebalances (borrow/merge) on underflow.
  Result<bool> Delete(double key, uint64_t rid);

  /// Looks up a single record; returns false if absent. On success the
  /// payload is copied into *value (resized). Safe to call concurrently
  /// with other read-only operations.
  Result<bool> Lookup(double key, uint64_t rid,
                      std::vector<uint8_t>* value) const;

  /// Visits every record with lo <= key <= hi in ascending (key, rid)
  /// order. Returns the number of records visited. Safe to call
  /// concurrently with other read-only operations; the callback runs
  /// without any pool latch held (only a pin on the current leaf).
  Result<uint64_t> RangeScan(double lo, double hi,
                             const ScanCallback& callback) const;

  /// Bulk-loads `entries` (must be sorted by (key, rid), strictly
  /// increasing, all values of value_size bytes) into an empty tree,
  /// packing leaves to `fill_factor` occupancy.
  Status BulkLoad(const std::vector<Entry>& entries,
                  double fill_factor = 0.9);

  /// Number of records in the tree. Takes the latch shared, so it is
  /// safe to read concurrently with a writer (PR 6 left these unlatched
  /// with a "don't read while writing" caveat; the annotation pass
  /// closed that hole).
  uint64_t num_entries() const VITRI_EXCLUDES(*latch_) {
    ReaderLock lock(*latch_);
    return num_entries_;
  }
  /// Levels, counting the root: an empty tree (single leaf root) has
  /// height 1. Latched shared, like num_entries().
  uint32_t height() const VITRI_EXCLUDES(*latch_) {
    ReaderLock lock(*latch_);
    return height_;
  }
  /// Records per full leaf.
  uint32_t leaf_capacity() const { return leaf_capacity_; }
  /// Separators per full interior node.
  uint32_t internal_capacity() const { return internal_capacity_; }
  uint32_t value_size() const { return value_size_; }

  storage::BufferPool* pool() const { return pool_; }

  /// Exhaustively checks every structural invariant of the tree:
  ///  * composite keys strictly ordered within and across nodes, with
  ///    separator bounds propagated to every subtree;
  ///  * node occupancy within [min_fill * capacity, capacity] for all
  ///    non-root nodes, and counts that fit on the page;
  ///  * all leaves at the same depth (== height) and the doubly linked
  ///    leaf chain enumerating exactly the tree's leaves in key order;
  ///  * the meta page agreeing with the in-memory header fields;
  ///  * the free list well-formed (marked pages, no cycles) and page
  ///    accounting exact: meta + reachable nodes + free pages cover the
  ///    pager;
  ///  * optionally (TreeCheckOptions::verify_checksums) every page's
  ///    integrity footer.
  /// Pages faulted in during the walk are checksum-verified by the
  /// BufferPool as usual, so on-disk corruption surfaces as Corruption.
  /// The pool's IoStats are restored afterwards: validation is
  /// observation-free and never skews reported query costs. Runs after
  /// every mutating operation in debug builds (VITRI_DCHECK), in tests,
  /// and via `vitri check`.
  Status ValidateInvariants(const TreeCheckOptions& options = {}) const;

 private:
  explicit BPlusTree(storage::BufferPool* pool) : pool_(pool) {}

  // --- internal helpers, defined in the .cc ---
  struct SplitResult;
  struct DeleteResult;

  // Every internal helper below runs inside a writer's (or, for the
  // const walkers, at least a reader's) critical section; REQUIRES makes
  // that a compile-time contract instead of a comment.
  Status InitEmpty() VITRI_REQUIRES(*latch_);
  Status LoadMeta() VITRI_REQUIRES(*latch_);
  Status StoreMeta() VITRI_REQUIRES(*latch_);
  Result<storage::PageRef> AllocNode() VITRI_REQUIRES(*latch_);
  Status FreeNode(storage::PageId id) VITRI_REQUIRES(*latch_);
  Result<SplitResult> InsertRec(storage::PageId node_id, double key,
                                uint64_t rid,
                                std::span<const uint8_t> value)
      VITRI_REQUIRES(*latch_);
  Result<DeleteResult> DeleteRec(storage::PageId node_id, double key,
                                 uint64_t rid) VITRI_REQUIRES(*latch_);
  Status RebalanceChild(storage::PageRef& parent, uint32_t child_pos,
                        bool* parent_underflow) VITRI_REQUIRES(*latch_);
  // ValidateInvariants minus the latch, for self-checks already inside
  // a writer's critical section.
  Status ValidateInvariantsLocked(const TreeCheckOptions& options) const
      VITRI_REQUIRES(*latch_);
  Status ValidateInvariantsImpl(const TreeCheckOptions& options) const
      VITRI_REQUIRES(*latch_);
  Status ValidateNode(const TreeCheckOptions& options,
                      storage::PageId node_id, uint32_t depth, bool has_lo,
                      double lo_key, uint64_t lo_rid, bool has_hi,
                      double hi_key, uint64_t hi_rid, uint64_t* entry_count,
                      uint64_t* node_count,
                      std::vector<storage::PageId>* leaves_in_order) const
      VITRI_REQUIRES(*latch_);

  storage::BufferPool* pool_ = nullptr;
  /// Reader-writer latch (see the class comment). Heap-allocated so the
  /// tree stays movable; never null after construction. Acquired after
  /// the ViTriIndex latch and before any BufferPool latch (DESIGN.md
  /// §14 acquisition order).
  mutable std::unique_ptr<SharedMutex> latch_ = std::make_unique<SharedMutex>();
  /// value_size_/leaf_capacity_/internal_capacity_ are fixed by
  /// Create/Open before the tree is visible to other threads and never
  /// change, so they are deliberately unguarded.
  uint32_t value_size_ = 0;
  storage::PageId root_ VITRI_GUARDED_BY(*latch_) = storage::kInvalidPageId;
  storage::PageId first_leaf_ VITRI_GUARDED_BY(*latch_) =
      storage::kInvalidPageId;
  storage::PageId free_head_ VITRI_GUARDED_BY(*latch_) =
      storage::kInvalidPageId;
  uint32_t height_ VITRI_GUARDED_BY(*latch_) = 0;
  uint64_t num_entries_ VITRI_GUARDED_BY(*latch_) = 0;
  uint32_t leaf_capacity_ = 0;
  uint32_t internal_capacity_ = 0;
};

}  // namespace vitri::btree

#endif  // VITRI_BTREE_BPLUS_TREE_H_
