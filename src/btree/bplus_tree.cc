#include "btree/bplus_tree.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>

#include "common/check.h"
#include "common/coding.h"
#include "common/metrics.h"

namespace vitri::btree {

using storage::BufferPool;
using storage::kInvalidPageId;
using storage::PageId;
using storage::PageRef;

namespace {

// ---- On-page layout ---------------------------------------------------
//
// Meta page (page 0):
//   [0]  u32 magic 'VITR'     [4]  u32 version
//   [8]  u32 value_size       [12] u32 root page
//   [16] u32 height           [20] u32 first leaf
//   [24] u64 num_entries      [32] u32 free-list head
//
// Interior node:
//   [0] u8 type=2  [1] pad  [2] u16 count
//   [4] u32 child0
//   [8] count * { f64 key, u64 rid, u32 child }          (20 bytes each)
//   child[i] holds composites in [sep[i-1], sep[i]).
//
// Leaf node:
//   [0] u8 type=1  [1] pad  [2] u16 count
//   [4] u32 next leaf  [8] u32 prev leaf
//   [12] count * { f64 key, u64 rid, value_size bytes }
//
// Free node: [0] u8 type=3, [4] u32 next-free.

constexpr uint32_t kMagic = 0x56495452;  // 'VITR'
// Version 2: the last storage::kPageFooterSize bytes of every page are
// reserved for the integrity footer, shrinking node capacities.
constexpr uint32_t kVersion = 2;
constexpr uint8_t kLeafType = 1;
constexpr uint8_t kInternalType = 2;
constexpr uint8_t kFreeType = 3;

constexpr size_t kMetaMagic = 0;
constexpr size_t kMetaVersion = 4;
constexpr size_t kMetaValueSize = 8;
constexpr size_t kMetaRoot = 12;
constexpr size_t kMetaHeight = 16;
constexpr size_t kMetaFirstLeaf = 20;
constexpr size_t kMetaNumEntries = 24;
constexpr size_t kMetaFreeHead = 32;

constexpr size_t kNodeType = 0;
constexpr size_t kNodeCount = 2;
constexpr size_t kLeafNext = 4;
constexpr size_t kLeafPrev = 8;
constexpr size_t kLeafHeader = 12;
constexpr size_t kInternalChild0 = 4;
constexpr size_t kInternalHeader = 8;
constexpr size_t kInternalEntry = 20;  // key + rid + child.

bool CompositeLess(double k1, uint64_t r1, double k2, uint64_t r2) {
  return k1 < k2 || (k1 == k2 && r1 < r2);
}

bool CompositeEq(double k1, uint64_t r1, double k2, uint64_t r2) {
  return k1 == k2 && r1 == r2;
}

// Typed view over a node page's raw bytes.
class NodeView {
 public:
  NodeView(uint8_t* data, uint32_t value_size)
      : p_(data), value_size_(value_size) {}

  bool is_leaf() const { return p_[kNodeType] == kLeafType; }
  uint8_t type() const { return p_[kNodeType]; }
  void set_type(uint8_t t) { p_[kNodeType] = t; }

  uint16_t count() const { return DecodeU16(p_ + kNodeCount); }
  void set_count(uint16_t c) { EncodeU16(p_ + kNodeCount, c); }

  // --- leaf accessors ---
  PageId next() const { return DecodeU32(p_ + kLeafNext); }
  void set_next(PageId id) { EncodeU32(p_ + kLeafNext, id); }
  PageId prev() const { return DecodeU32(p_ + kLeafPrev); }
  void set_prev(PageId id) { EncodeU32(p_ + kLeafPrev, id); }

  size_t leaf_entry_size() const { return 16 + value_size_; }
  uint8_t* leaf_entry(size_t i) {
    return p_ + kLeafHeader + i * leaf_entry_size();
  }
  const uint8_t* leaf_entry(size_t i) const {
    return p_ + kLeafHeader + i * leaf_entry_size();
  }
  double leaf_key(size_t i) const { return DecodeDouble(leaf_entry(i)); }
  uint64_t leaf_rid(size_t i) const { return DecodeU64(leaf_entry(i) + 8); }
  const uint8_t* leaf_value(size_t i) const { return leaf_entry(i) + 16; }
  void WriteLeafEntry(size_t i, double key, uint64_t rid,
                      const uint8_t* value) {
    uint8_t* e = leaf_entry(i);
    EncodeDouble(e, key);
    EncodeU64(e + 8, rid);
    std::memcpy(e + 16, value, value_size_);
  }
  // First slot whose composite is >= (key, rid).
  size_t LeafLowerBound(double key, uint64_t rid) const {
    size_t lo = 0, hi = count();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (CompositeLess(leaf_key(mid), leaf_rid(mid), key, rid)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
  void LeafInsertAt(size_t i, double key, uint64_t rid,
                    const uint8_t* value) {
    const size_t n = count();
    std::memmove(leaf_entry(i + 1), leaf_entry(i),
                 (n - i) * leaf_entry_size());
    WriteLeafEntry(i, key, rid, value);
    set_count(static_cast<uint16_t>(n + 1));
  }
  void LeafRemoveAt(size_t i) {
    const size_t n = count();
    std::memmove(leaf_entry(i), leaf_entry(i + 1),
                 (n - i - 1) * leaf_entry_size());
    set_count(static_cast<uint16_t>(n - 1));
  }

  // --- interior accessors ---
  PageId child(size_t i) const {
    if (i == 0) return DecodeU32(p_ + kInternalChild0);
    return DecodeU32(internal_entry(i - 1) + 16);
  }
  void set_child(size_t i, PageId id) {
    if (i == 0) {
      EncodeU32(p_ + kInternalChild0, id);
    } else {
      EncodeU32(internal_entry(i - 1) + 16, id);
    }
  }
  uint8_t* internal_entry(size_t i) {
    return p_ + kInternalHeader + i * kInternalEntry;
  }
  const uint8_t* internal_entry(size_t i) const {
    return p_ + kInternalHeader + i * kInternalEntry;
  }
  double sep_key(size_t i) const { return DecodeDouble(internal_entry(i)); }
  uint64_t sep_rid(size_t i) const {
    return DecodeU64(internal_entry(i) + 8);
  }
  void set_sep(size_t i, double key, uint64_t rid) {
    EncodeDouble(internal_entry(i), key);
    EncodeU64(internal_entry(i) + 8, rid);
  }
  // First separator strictly greater than (key, rid); the child to
  // descend into for both point and leftmost-range searches (all
  // earlier subtrees hold composites < (key, rid)).
  size_t InternalDescendIndex(double key, uint64_t rid) const {
    size_t lo = 0, hi = count();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (CompositeLess(key, rid, sep_key(mid), sep_rid(mid))) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }
  // Inserts separator (key,rid) at slot i with right child `right`.
  void InternalInsertAt(size_t i, double key, uint64_t rid, PageId right) {
    const size_t n = count();
    std::memmove(internal_entry(i + 1), internal_entry(i),
                 (n - i) * kInternalEntry);
    set_sep(i, key, rid);
    EncodeU32(internal_entry(i) + 16, right);
    set_count(static_cast<uint16_t>(n + 1));
  }
  // Removes separator i together with child i+1.
  void InternalRemoveAt(size_t i) {
    const size_t n = count();
    std::memmove(internal_entry(i), internal_entry(i + 1),
                 (n - i - 1) * kInternalEntry);
    set_count(static_cast<uint16_t>(n - 1));
  }

 private:
  uint8_t* p_;
  uint32_t value_size_;
};

}  // namespace

struct BPlusTree::SplitResult {
  bool split = false;
  double sep_key = 0.0;
  uint64_t sep_rid = 0;
  PageId right = kInvalidPageId;
};

struct BPlusTree::DeleteResult {
  bool found = false;
  bool underflow = false;
};

// ---- construction ------------------------------------------------------

Result<BPlusTree> BPlusTree::Create(BufferPool* pool, uint32_t value_size) {
  const size_t page_size = pool->pager()->page_size();
  if (page_size < storage::kPageFooterSize + kLeafHeader) {
    return Status::InvalidArgument("page size too small for a node");
  }
  const size_t usable = page_size - storage::kPageFooterSize;
  const size_t leaf_entry = 16 + value_size;
  const size_t leaf_cap = (usable - kLeafHeader) / leaf_entry;
  const size_t internal_cap = (usable - kInternalHeader) / kInternalEntry;
  if (leaf_cap < 2 || internal_cap < 3) {
    return Status::InvalidArgument(
        "value_size too large for the page size (need >=2 leaf entries)");
  }
  if (pool->pager()->num_pages() != 0) {
    return Status::InvalidArgument("Create requires an empty pager");
  }
  BPlusTree tree(pool);
  tree.value_size_ = value_size;
  tree.leaf_capacity_ = static_cast<uint32_t>(leaf_cap);
  tree.internal_capacity_ = static_cast<uint32_t>(internal_cap);
  {
    // The tree is still private to this thread; taking its latch here
    // is uncontended and lets InitEmpty keep its REQUIRES contract.
    WriterLock lock(*tree.latch_);
    VITRI_RETURN_IF_ERROR(tree.InitEmpty());
  }
  return tree;
}

Result<BPlusTree> BPlusTree::Open(BufferPool* pool) {
  if (pool->pager()->num_pages() == 0) {
    return Status::InvalidArgument("Open requires an initialized pager");
  }
  BPlusTree tree(pool);
  {
    WriterLock lock(*tree.latch_);
    VITRI_RETURN_IF_ERROR(tree.LoadMeta());
  }
  return tree;
}

Status BPlusTree::InitEmpty() {
  VITRI_ASSIGN_OR_RETURN(PageRef meta, pool_->New());
  if (meta.id() != 0) {
    return Status::Internal("meta page must be page 0");
  }
  VITRI_ASSIGN_OR_RETURN(PageRef root, pool_->New());
  NodeView view(root.mutable_data(), value_size_);
  view.set_type(kLeafType);
  view.set_count(0);
  view.set_next(kInvalidPageId);
  view.set_prev(kInvalidPageId);
  root.MarkDirty();
  root_ = root.id();
  first_leaf_ = root.id();
  height_ = 1;
  num_entries_ = 0;
  free_head_ = kInvalidPageId;
  meta.MarkDirty();
  meta.Release();
  return StoreMeta();
}

Status BPlusTree::LoadMeta() {
  VITRI_ASSIGN_OR_RETURN(PageRef meta, pool_->Fetch(0));
  const uint8_t* p = meta.data();
  if (DecodeU32(p + kMetaMagic) != kMagic) {
    return Status::Corruption("bad B+-tree magic");
  }
  if (DecodeU32(p + kMetaVersion) != kVersion) {
    return Status::Corruption("unsupported B+-tree version");
  }
  value_size_ = DecodeU32(p + kMetaValueSize);
  root_ = DecodeU32(p + kMetaRoot);
  height_ = DecodeU32(p + kMetaHeight);
  first_leaf_ = DecodeU32(p + kMetaFirstLeaf);
  num_entries_ = DecodeU64(p + kMetaNumEntries);
  free_head_ = DecodeU32(p + kMetaFreeHead);
  const size_t usable =
      pool_->pager()->page_size() - storage::kPageFooterSize;
  leaf_capacity_ =
      static_cast<uint32_t>((usable - kLeafHeader) / (16 + value_size_));
  internal_capacity_ =
      static_cast<uint32_t>((usable - kInternalHeader) / kInternalEntry);
  return Status::OK();
}

Status BPlusTree::StoreMeta() {
  VITRI_ASSIGN_OR_RETURN(PageRef meta, pool_->Fetch(0));
  uint8_t* p = meta.mutable_data();
  EncodeU32(p + kMetaMagic, kMagic);
  EncodeU32(p + kMetaVersion, kVersion);
  EncodeU32(p + kMetaValueSize, value_size_);
  EncodeU32(p + kMetaRoot, root_);
  EncodeU32(p + kMetaHeight, height_);
  EncodeU32(p + kMetaFirstLeaf, first_leaf_);
  EncodeU64(p + kMetaNumEntries, num_entries_);
  EncodeU32(p + kMetaFreeHead, free_head_);
  meta.MarkDirty();
  return Status::OK();
}

// ---- node allocation / recycling ---------------------------------------

Result<PageRef> BPlusTree::AllocNode() {
  if (free_head_ != kInvalidPageId) {
    VITRI_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(free_head_));
    if (page.data()[kNodeType] != kFreeType) {
      return Status::Corruption("free-list page is not marked free");
    }
    free_head_ = DecodeU32(page.data() + kInternalChild0);
    std::memset(page.mutable_data(), 0, pool_->pager()->page_size());
    page.MarkDirty();
    return page;
  }
  return pool_->New();
}

Status BPlusTree::FreeNode(PageId id) {
  VITRI_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(id));
  uint8_t* p = page.mutable_data();
  p[kNodeType] = kFreeType;
  EncodeU32(p + kInternalChild0, free_head_);
  page.MarkDirty();
  free_head_ = id;
  return Status::OK();
}

// ---- insert -------------------------------------------------------------

Status BPlusTree::Insert(double key, uint64_t rid,
                         std::span<const uint8_t> value) {
  WriterLock lock(*latch_);
  if (value.size() != value_size_) {
    return Status::InvalidArgument("value size mismatch");
  }
  VITRI_ASSIGN_OR_RETURN(SplitResult split, InsertRec(root_, key, rid, value));
  if (split.split) {
    // Grow a new root above the old one.
    VITRI_ASSIGN_OR_RETURN(PageRef new_root, AllocNode());
    NodeView view(new_root.mutable_data(), value_size_);
    view.set_type(kInternalType);
    view.set_count(0);
    view.set_child(0, root_);
    view.InternalInsertAt(0, split.sep_key, split.sep_rid, split.right);
    new_root.MarkDirty();
    root_ = new_root.id();
    ++height_;
  }
  ++num_entries_;
  VITRI_METRIC_COUNTER("btree.inserts")->Increment();
  VITRI_RETURN_IF_ERROR(StoreMeta());
  VITRI_DCHECK_OK(ValidateInvariantsLocked({}));
  return Status::OK();
}

Result<BPlusTree::SplitResult> BPlusTree::InsertRec(
    PageId node_id, double key, uint64_t rid,
    std::span<const uint8_t> value) {
  VITRI_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(node_id));
  NodeView node(page.mutable_data(), value_size_);

  if (node.is_leaf()) {
    const size_t pos = node.LeafLowerBound(key, rid);
    if (pos < node.count() &&
        CompositeEq(node.leaf_key(pos), node.leaf_rid(pos), key, rid)) {
      return Status::InvalidArgument("duplicate (key, rid)");
    }
    if (node.count() < leaf_capacity_) {
      node.LeafInsertAt(pos, key, rid, value.data());
      page.MarkDirty();
      return SplitResult{};
    }

    // Overflowing leaf: gather all entries plus the new one, then split.
    struct TmpEntry {
      double key;
      uint64_t rid;
      std::vector<uint8_t> value;
    };
    std::vector<TmpEntry> all;
    all.reserve(node.count() + 1);
    for (size_t i = 0; i < node.count(); ++i) {
      if (i == pos) {
        all.push_back({key, rid,
                       std::vector<uint8_t>(value.begin(), value.end())});
      }
      all.push_back({node.leaf_key(i), node.leaf_rid(i),
                     std::vector<uint8_t>(node.leaf_value(i),
                                          node.leaf_value(i) + value_size_)});
    }
    if (pos == node.count()) {
      all.push_back(
          {key, rid, std::vector<uint8_t>(value.begin(), value.end())});
    }

    VITRI_ASSIGN_OR_RETURN(PageRef right_page, AllocNode());
    NodeView right(right_page.mutable_data(), value_size_);
    right.set_type(kLeafType);
    right.set_count(0);

    const size_t mid = all.size() / 2;
    node.set_count(0);
    for (size_t i = 0; i < mid; ++i) {
      node.WriteLeafEntry(i, all[i].key, all[i].rid, all[i].value.data());
    }
    node.set_count(static_cast<uint16_t>(mid));
    for (size_t i = mid; i < all.size(); ++i) {
      right.WriteLeafEntry(i - mid, all[i].key, all[i].rid,
                           all[i].value.data());
    }
    right.set_count(static_cast<uint16_t>(all.size() - mid));

    // Stitch the leaf chain: node <-> right <-> old next.
    right.set_next(node.next());
    right.set_prev(node_id);
    if (node.next() != kInvalidPageId) {
      VITRI_ASSIGN_OR_RETURN(PageRef after, pool_->Fetch(node.next()));
      NodeView after_view(after.mutable_data(), value_size_);
      after_view.set_prev(right_page.id());
      after.MarkDirty();
    }
    node.set_next(right_page.id());

    page.MarkDirty();
    right_page.MarkDirty();

    VITRI_METRIC_COUNTER("btree.leaf_splits")->Increment();
    SplitResult out;
    out.split = true;
    out.sep_key = right.leaf_key(0);
    out.sep_rid = right.leaf_rid(0);
    out.right = right_page.id();
    return out;
  }

  // Interior node.
  const size_t idx = node.InternalDescendIndex(key, rid);
  const PageId child_id = node.child(idx);
  VITRI_ASSIGN_OR_RETURN(SplitResult child_split,
                         InsertRec(child_id, key, rid, value));
  if (!child_split.split) return SplitResult{};

  if (node.count() < internal_capacity_) {
    node.InternalInsertAt(idx, child_split.sep_key, child_split.sep_rid,
                          child_split.right);
    page.MarkDirty();
    return SplitResult{};
  }

  // Overflowing interior node: gather (separators, children), split and
  // promote the middle separator.
  struct Sep {
    double key;
    uint64_t rid;
    PageId right_child;
  };
  std::vector<Sep> seps;
  seps.reserve(node.count() + 1);
  for (size_t i = 0; i < node.count(); ++i) {
    if (i == idx) {
      seps.push_back({child_split.sep_key, child_split.sep_rid,
                      child_split.right});
    }
    seps.push_back({node.sep_key(i), node.sep_rid(i), node.child(i + 1)});
  }
  if (idx == node.count()) {
    seps.push_back(
        {child_split.sep_key, child_split.sep_rid, child_split.right});
  }
  const PageId child0 = node.child(0);

  VITRI_ASSIGN_OR_RETURN(PageRef right_page, AllocNode());
  NodeView right(right_page.mutable_data(), value_size_);
  right.set_type(kInternalType);
  right.set_count(0);

  const size_t mid = seps.size() / 2;  // Promoted separator.
  node.set_count(0);
  node.set_child(0, child0);
  for (size_t i = 0; i < mid; ++i) {
    node.InternalInsertAt(i, seps[i].key, seps[i].rid, seps[i].right_child);
  }
  right.set_child(0, seps[mid].right_child);
  for (size_t i = mid + 1; i < seps.size(); ++i) {
    right.InternalInsertAt(i - mid - 1, seps[i].key, seps[i].rid,
                           seps[i].right_child);
  }
  page.MarkDirty();
  right_page.MarkDirty();

  VITRI_METRIC_COUNTER("btree.internal_splits")->Increment();
  SplitResult out;
  out.split = true;
  out.sep_key = seps[mid].key;
  out.sep_rid = seps[mid].rid;
  out.right = right_page.id();
  return out;
}

// ---- lookup / scan ------------------------------------------------------

Result<bool> BPlusTree::Lookup(double key, uint64_t rid,
                               std::vector<uint8_t>* value) const {
  ReaderLock lock(*latch_);
  VITRI_METRIC_COUNTER("btree.lookups")->Increment();
  PageId node_id = root_;
  for (uint32_t level = 0; level + 1 < height_; ++level) {
    VITRI_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(node_id));
    NodeView node(const_cast<uint8_t*>(page.data()), value_size_);
    node_id = node.child(node.InternalDescendIndex(key, rid));
  }
  VITRI_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(node_id));
  NodeView leaf(const_cast<uint8_t*>(page.data()), value_size_);
  const size_t pos = leaf.LeafLowerBound(key, rid);
  if (pos < leaf.count() &&
      CompositeEq(leaf.leaf_key(pos), leaf.leaf_rid(pos), key, rid)) {
    if (value != nullptr) {
      value->assign(leaf.leaf_value(pos), leaf.leaf_value(pos) + value_size_);
    }
    return true;
  }
  return false;
}

Result<uint64_t> BPlusTree::RangeScan(double lo, double hi,
                                      const ScanCallback& callback) const {
  ReaderLock lock(*latch_);
  VITRI_METRIC_COUNTER("btree.range_scans")->Increment();
  if (lo > hi) return static_cast<uint64_t>(0);
  // Descend toward the leftmost composite >= (lo, 0).
  PageId node_id = root_;
  for (uint32_t level = 0; level + 1 < height_; ++level) {
    VITRI_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(node_id));
    NodeView node(const_cast<uint8_t*>(page.data()), value_size_);
    node_id = node.child(node.InternalDescendIndex(lo, 0));
  }

  uint64_t visited = 0;
  PageId leaf_id = node_id;
  bool first_leaf_of_scan = true;
  while (leaf_id != kInvalidPageId) {
    VITRI_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(leaf_id));
    NodeView leaf(const_cast<uint8_t*>(page.data()), value_size_);
    size_t pos = first_leaf_of_scan ? leaf.LeafLowerBound(lo, 0) : 0;
    first_leaf_of_scan = false;
    // The scan will follow the sibling chain unless this leaf already
    // covers hi; hint the pool before consuming the current leaf so the
    // readahead overlaps with the callback work. Bulk-loaded chains are
    // allocated in order, so siblings are contiguous on disk and the
    // pool's readahead window covers several upcoming leaves.
    if (leaf.count() > 0 && leaf.leaf_key(leaf.count() - 1) <= hi) {
      pool_->Prefetch(leaf.next());
    }
    for (; pos < leaf.count(); ++pos) {
      const double k = leaf.leaf_key(pos);
      if (k > hi) return visited;
      ++visited;
      if (!callback(k, leaf.leaf_rid(pos),
                    std::span<const uint8_t>(leaf.leaf_value(pos),
                                             value_size_))) {
        return visited;
      }
    }
    leaf_id = leaf.next();
  }
  return visited;
}

// ---- delete -------------------------------------------------------------

Result<bool> BPlusTree::Delete(double key, uint64_t rid) {
  WriterLock lock(*latch_);
  VITRI_ASSIGN_OR_RETURN(DeleteResult result, DeleteRec(root_, key, rid));
  if (!result.found) return false;
  --num_entries_;

  // Shrink the root while it is an interior node with a single child.
  for (;;) {
    VITRI_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(root_));
    NodeView node(const_cast<uint8_t*>(page.data()), value_size_);
    if (node.is_leaf() || node.count() > 0) break;
    const PageId only_child = node.child(0);
    page.Release();
    VITRI_RETURN_IF_ERROR(FreeNode(root_));
    root_ = only_child;
    --height_;
  }
  VITRI_RETURN_IF_ERROR(StoreMeta());
  VITRI_DCHECK_OK(ValidateInvariantsLocked({}));
  return true;
}

Result<BPlusTree::DeleteResult> BPlusTree::DeleteRec(PageId node_id,
                                                     double key,
                                                     uint64_t rid) {
  VITRI_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(node_id));
  NodeView node(page.mutable_data(), value_size_);

  if (node.is_leaf()) {
    const size_t pos = node.LeafLowerBound(key, rid);
    if (pos >= node.count() ||
        !CompositeEq(node.leaf_key(pos), node.leaf_rid(pos), key, rid)) {
      return DeleteResult{};
    }
    node.LeafRemoveAt(pos);
    page.MarkDirty();
    DeleteResult out;
    out.found = true;
    out.underflow = node.count() < leaf_capacity_ / 2;
    return out;
  }

  const size_t idx = node.InternalDescendIndex(key, rid);
  const PageId child_id = node.child(idx);
  VITRI_ASSIGN_OR_RETURN(DeleteResult child_result,
                         DeleteRec(child_id, key, rid));
  if (!child_result.found) return DeleteResult{};

  DeleteResult out;
  out.found = true;
  if (child_result.underflow) {
    bool parent_underflow = false;
    VITRI_RETURN_IF_ERROR(RebalanceChild(page, static_cast<uint32_t>(idx),
                                         &parent_underflow));
    out.underflow = parent_underflow;
  }
  return out;
}

Status BPlusTree::RebalanceChild(PageRef& parent_ref, uint32_t child_pos,
                                 bool* parent_underflow) {
  NodeView parent(parent_ref.mutable_data(), value_size_);
  *parent_underflow = false;

  // Prefer the left sibling; fall back to the right one.
  const bool use_left = child_pos > 0;
  const uint32_t left_pos = use_left ? child_pos - 1 : child_pos;
  const uint32_t right_pos = left_pos + 1;
  if (right_pos > parent.count()) {
    // Parent has a single child: nothing to rebalance against. Can only
    // happen at a root about to shrink; leave it to the caller.
    return Status::OK();
  }

  VITRI_ASSIGN_OR_RETURN(PageRef left_ref,
                         pool_->Fetch(parent.child(left_pos)));
  VITRI_ASSIGN_OR_RETURN(PageRef right_ref,
                         pool_->Fetch(parent.child(right_pos)));
  NodeView left(left_ref.mutable_data(), value_size_);
  NodeView right(right_ref.mutable_data(), value_size_);
  const uint32_t sep_idx = left_pos;  // Separator between left and right.

  if (left.is_leaf()) {
    const uint32_t min_count = leaf_capacity_ / 2;
    // Borrow from whichever sibling has spare entries.
    if (use_left ? left.count() > min_count : right.count() > min_count) {
      if (use_left) {
        // Move the tail of `left` to the front of `right`.
        const size_t src = left.count() - 1;
        right.LeafInsertAt(0, left.leaf_key(src), left.leaf_rid(src),
                           left.leaf_value(src));
        left.LeafRemoveAt(src);
      } else {
        // Move the head of `right` to the tail of `left`.
        left.LeafInsertAt(left.count(), right.leaf_key(0),
                          right.leaf_rid(0), right.leaf_value(0));
        right.LeafRemoveAt(0);
      }
      parent.set_sep(sep_idx, right.leaf_key(0), right.leaf_rid(0));
      left_ref.MarkDirty();
      right_ref.MarkDirty();
      parent_ref.MarkDirty();
      return Status::OK();
    }
    // Merge right into left.
    for (size_t i = 0; i < right.count(); ++i) {
      left.LeafInsertAt(left.count(), right.leaf_key(i), right.leaf_rid(i),
                        right.leaf_value(i));
    }
    left.set_next(right.next());
    if (right.next() != kInvalidPageId) {
      VITRI_ASSIGN_OR_RETURN(PageRef after, pool_->Fetch(right.next()));
      NodeView after_view(after.mutable_data(), value_size_);
      after_view.set_prev(left_ref.id());
      after.MarkDirty();
    }
    const PageId dead = right_ref.id();
    right_ref.Release();
    VITRI_RETURN_IF_ERROR(FreeNode(dead));
    parent.InternalRemoveAt(sep_idx);
    left_ref.MarkDirty();
    parent_ref.MarkDirty();
    *parent_underflow = parent.count() < internal_capacity_ / 2;
    return Status::OK();
  }

  // Interior children.
  const uint32_t min_count = internal_capacity_ / 2;
  if (use_left ? left.count() > min_count : right.count() > min_count) {
    if (use_left) {
      // Rotate right: parent separator moves down into `right`, left's
      // last separator moves up, left's last child becomes right's first.
      const size_t src = left.count() - 1;
      const PageId moved_child = left.child(src + 1);
      // Prepend to right: shift children and separators.
      right.InternalInsertAt(0, parent.sep_key(sep_idx),
                             parent.sep_rid(sep_idx), right.child(0));
      right.set_child(0, moved_child);
      parent.set_sep(sep_idx, left.sep_key(src), left.sep_rid(src));
      left.InternalRemoveAt(src);
    } else {
      // Rotate left: parent separator moves down into `left`, right's
      // first separator moves up, right's first child moves to left.
      left.InternalInsertAt(left.count(), parent.sep_key(sep_idx),
                            parent.sep_rid(sep_idx), right.child(0));
      parent.set_sep(sep_idx, right.sep_key(0), right.sep_rid(0));
      const PageId new_first = right.child(1);
      right.InternalRemoveAt(0);
      right.set_child(0, new_first);
    }
    left_ref.MarkDirty();
    right_ref.MarkDirty();
    parent_ref.MarkDirty();
    return Status::OK();
  }

  // Merge interior right into left: left ++ [parent separator] ++ right.
  left.InternalInsertAt(left.count(), parent.sep_key(sep_idx),
                        parent.sep_rid(sep_idx), right.child(0));
  for (size_t i = 0; i < right.count(); ++i) {
    left.InternalInsertAt(left.count(), right.sep_key(i), right.sep_rid(i),
                          right.child(i + 1));
  }
  const PageId dead = right_ref.id();
  right_ref.Release();
  VITRI_RETURN_IF_ERROR(FreeNode(dead));
  parent.InternalRemoveAt(sep_idx);
  left_ref.MarkDirty();
  parent_ref.MarkDirty();
  *parent_underflow = parent.count() < internal_capacity_ / 2;
  return Status::OK();
}

// ---- bulk load ----------------------------------------------------------

Status BPlusTree::BulkLoad(const std::vector<Entry>& entries,
                           double fill_factor) {
  WriterLock lock(*latch_);
  if (num_entries_ != 0) {
    return Status::InvalidArgument("BulkLoad requires an empty tree");
  }
  VITRI_METRIC_COUNTER("btree.bulk_loads")->Increment();
  if (fill_factor <= 0.0 || fill_factor > 1.0) {
    return Status::InvalidArgument("fill_factor must be in (0, 1]");
  }
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].value.size() != value_size_) {
      return Status::InvalidArgument("value size mismatch in bulk load");
    }
    if (i > 0 && !CompositeLess(entries[i - 1].key, entries[i - 1].rid,
                                entries[i].key, entries[i].rid)) {
      return Status::InvalidArgument(
          "bulk-load entries must be strictly sorted by (key, rid)");
    }
  }
  if (entries.empty()) return Status::OK();

  const size_t per_leaf = std::max<size_t>(
      1, static_cast<size_t>(fill_factor * leaf_capacity_));
  const size_t per_internal = std::max<size_t>(
      2, static_cast<size_t>(fill_factor * internal_capacity_));

  // The pre-existing empty root leaf is recycled.
  VITRI_RETURN_IF_ERROR(FreeNode(root_));

  struct ChildRef {
    double key;
    uint64_t rid;
    PageId page;
  };

  // Level 0: pack leaves.
  std::vector<ChildRef> level;
  PageId prev_leaf = kInvalidPageId;
  size_t i = 0;
  while (i < entries.size()) {
    size_t take = std::min(per_leaf, entries.size() - i);
    // Avoid a final underfull leaf below the deletion threshold.
    const size_t remaining_after = entries.size() - i - take;
    if (remaining_after > 0 && remaining_after < per_leaf / 2) {
      take = (entries.size() - i + 1) / 2;
    }
    VITRI_ASSIGN_OR_RETURN(PageRef page, AllocNode());
    NodeView leaf(page.mutable_data(), value_size_);
    leaf.set_type(kLeafType);
    leaf.set_count(0);
    leaf.set_prev(prev_leaf);
    leaf.set_next(kInvalidPageId);
    for (size_t j = 0; j < take; ++j) {
      leaf.WriteLeafEntry(j, entries[i + j].key, entries[i + j].rid,
                          entries[i + j].value.data());
    }
    leaf.set_count(static_cast<uint16_t>(take));
    page.MarkDirty();
    if (prev_leaf != kInvalidPageId) {
      VITRI_ASSIGN_OR_RETURN(PageRef prev_page, pool_->Fetch(prev_leaf));
      NodeView prev_view(prev_page.mutable_data(), value_size_);
      prev_view.set_next(page.id());
      prev_page.MarkDirty();
    } else {
      first_leaf_ = page.id();
    }
    level.push_back({entries[i].key, entries[i].rid, page.id()});
    prev_leaf = page.id();
    i += take;
  }

  // Build interior levels bottom-up until one node remains.
  height_ = 1;
  while (level.size() > 1) {
    std::vector<ChildRef> next_level;
    size_t j = 0;
    while (j < level.size()) {
      size_t take = std::min(per_internal + 1, level.size() - j);
      const size_t remaining_after = level.size() - j - take;
      if (remaining_after > 0 && remaining_after < (per_internal + 1) / 2) {
        take = (level.size() - j + 1) / 2;
      }
      VITRI_ASSIGN_OR_RETURN(PageRef page, AllocNode());
      NodeView inner(page.mutable_data(), value_size_);
      inner.set_type(kInternalType);
      inner.set_count(0);
      inner.set_child(0, level[j].page);
      for (size_t c = 1; c < take; ++c) {
        inner.InternalInsertAt(c - 1, level[j + c].key, level[j + c].rid,
                               level[j + c].page);
      }
      page.MarkDirty();
      next_level.push_back({level[j].key, level[j].rid, page.id()});
      j += take;
    }
    level = std::move(next_level);
    ++height_;
  }
  root_ = level[0].page;
  num_entries_ = entries.size();
  VITRI_RETURN_IF_ERROR(StoreMeta());
  // Low fill factors legitimately pack below the default occupancy
  // floor, so the post-bulk-load self-check scales its bound down.
  TreeCheckOptions check;
  check.min_fill = std::min(check.min_fill, fill_factor / 4.0);
  VITRI_DCHECK_OK(ValidateInvariantsLocked(check));
  return Status::OK();
}

// ---- validation ---------------------------------------------------------

Status BPlusTree::ValidateInvariants(const TreeCheckOptions& options) const {
  WriterLock lock(*latch_);
  return ValidateInvariantsLocked(options);
}

Status BPlusTree::ValidateInvariantsLocked(
    const TreeCheckOptions& options) const {
  // The validator is observation-free: the audited save/restore scope
  // rolls the pool's I/O counters back (shard by shard) so debug-build
  // self-checks never skew the page-access costs the experiments report.
  storage::ScopedPoolStatsRestore restore(pool_);
  return ValidateInvariantsImpl(options);
}

Status BPlusTree::ValidateInvariantsImpl(
    const TreeCheckOptions& options) const {
  // Meta page must agree with the in-memory header fields (StoreMeta
  // runs at the end of every mutating operation).
  {
    VITRI_ASSIGN_OR_RETURN(PageRef meta, pool_->Fetch(0));
    const uint8_t* p = meta.data();
    if (DecodeU32(p + kMetaMagic) != kMagic ||
        DecodeU32(p + kMetaVersion) != kVersion) {
      return Status::Corruption("meta page magic/version mismatch");
    }
    if (DecodeU32(p + kMetaValueSize) != value_size_ ||
        DecodeU32(p + kMetaRoot) != root_ ||
        DecodeU32(p + kMetaHeight) != height_ ||
        DecodeU32(p + kMetaFirstLeaf) != first_leaf_ ||
        DecodeU64(p + kMetaNumEntries) != num_entries_ ||
        DecodeU32(p + kMetaFreeHead) != free_head_) {
      return Status::Corruption(
          "meta page disagrees with the in-memory tree header");
    }
  }

  uint64_t entry_count = 0;
  uint64_t node_count = 0;
  std::vector<PageId> leaves;
  VITRI_RETURN_IF_ERROR(ValidateNode(options, root_, 0, false, 0.0, 0,
                                     false, 0.0, 0, &entry_count,
                                     &node_count, &leaves));
  if (entry_count != num_entries_) {
    return Status::Corruption(
        "entry count mismatch: tree holds " + std::to_string(entry_count) +
        ", meta claims " + std::to_string(num_entries_));
  }

  // Leaf chain must enumerate the same leaves, in order, doubly linked.
  PageId id = first_leaf_;
  PageId prev = kInvalidPageId;
  size_t chain_idx = 0;
  while (id != kInvalidPageId) {
    VITRI_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(id));
    NodeView leaf(const_cast<uint8_t*>(page.data()), value_size_);
    if (!leaf.is_leaf()) return Status::Corruption("chain hits non-leaf");
    if (leaf.prev() != prev) {
      return Status::Corruption("bad prev link in leaf " +
                                std::to_string(id));
    }
    if (chain_idx >= leaves.size() || leaves[chain_idx] != id) {
      return Status::Corruption("leaf chain order mismatch");
    }
    prev = id;
    id = leaf.next();
    ++chain_idx;
  }
  if (chain_idx != leaves.size()) {
    return Status::Corruption("leaf chain shorter than the tree");
  }

  // Free list: every page marked free, no cycles, and exact page
  // accounting — meta + reachable nodes + free pages cover the pager.
  const uint64_t total_pages = pool_->pager()->num_pages();
  uint64_t free_count = 0;
  PageId free_id = free_head_;
  while (free_id != kInvalidPageId) {
    if (++free_count > total_pages) {
      return Status::Corruption("free list cycle");
    }
    VITRI_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(free_id));
    if (page.data()[kNodeType] != kFreeType) {
      return Status::Corruption("free-list page " + std::to_string(free_id) +
                                " is not marked free");
    }
    free_id = DecodeU32(page.data() + kInternalChild0);
  }
  if (1 + node_count + free_count != total_pages) {
    return Status::Corruption(
        "page accounting mismatch: meta + " + std::to_string(node_count) +
        " nodes + " + std::to_string(free_count) + " free pages != " +
        std::to_string(total_pages) + " pager pages");
  }

  if (options.verify_checksums) {
    VITRI_ASSIGN_OR_RETURN(storage::PageVerifyReport report,
                           storage::VerifyAllPages(pool_->pager()));
    if (!report.clean()) {
      return Status::Corruption(
          "page footer checksum mismatch on " +
          std::to_string(report.corrupt.size()) + " page(s), first: " +
          std::to_string(report.corrupt.front()));
    }
  }
  return Status::OK();
}

Status BPlusTree::ValidateNode(const TreeCheckOptions& options,
                               PageId node_id, uint32_t depth, bool has_lo,
                               double lo_key, uint64_t lo_rid, bool has_hi,
                               double hi_key, uint64_t hi_rid,
                               uint64_t* entry_count, uint64_t* node_count,
                               std::vector<PageId>* leaves_in_order) const {
  if (++*node_count > pool_->pager()->num_pages()) {
    return Status::Corruption("node graph has more nodes than pages "
                              "(child cycle)");
  }
  VITRI_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(node_id));
  NodeView node(const_cast<uint8_t*>(page.data()), value_size_);

  if (node.is_leaf()) {
    if (depth + 1 != height_) {
      return Status::Corruption("leaf at wrong depth");
    }
    // Bound the count before touching entries: a corrupted count would
    // otherwise walk past the end of the page.
    if (node.count() > leaf_capacity_) {
      return Status::Corruption("leaf " + std::to_string(node_id) +
                                " count exceeds capacity");
    }
    const auto min_entries = std::max(
        1u, static_cast<uint32_t>(options.min_fill *
                                  static_cast<double>(leaf_capacity_)));
    if (node_id != root_ && node.count() < min_entries) {
      return Status::Corruption("leaf " + std::to_string(node_id) +
                                " below minimum fill: " +
                                std::to_string(node.count()) + " < " +
                                std::to_string(min_entries));
    }
    for (size_t i = 0; i < node.count(); ++i) {
      const double k = node.leaf_key(i);
      const uint64_t r = node.leaf_rid(i);
      if (i > 0 && !CompositeLess(node.leaf_key(i - 1), node.leaf_rid(i - 1),
                                  k, r)) {
        return Status::Corruption("leaf keys out of order");
      }
      if (has_lo && CompositeLess(k, r, lo_key, lo_rid)) {
        return Status::Corruption("leaf key below subtree bound");
      }
      if (has_hi && !CompositeLess(k, r, hi_key, hi_rid)) {
        return Status::Corruption("leaf key above subtree bound");
      }
    }
    *entry_count += node.count();
    leaves_in_order->push_back(node_id);
    return Status::OK();
  }

  if (node.type() != kInternalType) {
    return Status::Corruption("unexpected node type");
  }
  if (node.count() == 0 && node_id != root_) {
    return Status::Corruption("empty interior node");
  }
  if (node.count() > internal_capacity_) {
    return Status::Corruption("interior node " + std::to_string(node_id) +
                              " count exceeds capacity");
  }
  // Interior occupancy counts children (count + 1): bulk load packs
  // children per node, so the guaranteed floor is on fan-out, not on
  // separators.
  const auto min_children = std::max(
      2u, static_cast<uint32_t>(
              options.min_fill *
              static_cast<double>(internal_capacity_ + 1)));
  if (node_id != root_ && node.count() + 1u < min_children) {
    return Status::Corruption("interior node " + std::to_string(node_id) +
                              " below minimum fill: " +
                              std::to_string(node.count() + 1u) + " < " +
                              std::to_string(min_children) + " children");
  }
  for (size_t i = 0; i + 1 < node.count(); ++i) {
    if (!CompositeLess(node.sep_key(i), node.sep_rid(i),
                       node.sep_key(i + 1), node.sep_rid(i + 1))) {
      return Status::Corruption("separators out of order");
    }
  }
  for (size_t i = 0; i <= node.count(); ++i) {
    const bool child_has_lo = (i > 0) || has_lo;
    const double child_lo_key = (i > 0) ? node.sep_key(i - 1) : lo_key;
    const uint64_t child_lo_rid = (i > 0) ? node.sep_rid(i - 1) : lo_rid;
    const bool child_has_hi = (i < node.count()) || has_hi;
    const double child_hi_key = (i < node.count()) ? node.sep_key(i) : hi_key;
    const uint64_t child_hi_rid =
        (i < node.count()) ? node.sep_rid(i) : hi_rid;
    VITRI_RETURN_IF_ERROR(ValidateNode(
        options, node.child(i), depth + 1, child_has_lo, child_lo_key,
        child_lo_rid, child_has_hi, child_hi_key, child_hi_rid, entry_count,
        node_count, leaves_in_order));
  }
  return Status::OK();
}

}  // namespace vitri::btree
